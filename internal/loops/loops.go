// Package loops defines statement-level models of the 24 Lawrence
// Livermore loops (LFK, McMahon 1986) for the machine simulator, matching
// the way the paper uses them: most kernels run sequentially (or as DOALL
// loops) and serve the time-based analysis experiments (Figure 1), while
// loops 3, 4 and 17 carry cross-iteration data dependencies and execute as
// DOACROSS loops with advance/await synchronization (Figure 3, Tables 1-3).
//
// Statement lists follow each kernel's source structure; statement costs
// are calibrated so that full trace instrumentation reproduces the paper's
// measured slowdowns (the slowdowns are properties of the original
// Fortran compiler and tracer, which this reproduction must take as given
// — see DESIGN.md §2). The DOACROSS loops are calibrated against all six
// ratios of Tables 1 and 2 simultaneously; the derivation is in
// doc.go's calibration notes.
package loops

import (
	"fmt"
	"sort"

	"perturb/internal/instr"
	"perturb/internal/program"
	"perturb/internal/trace"
)

const us = trace.Microsecond

// PaperOverheads returns the trace-probe costs used by the paper-scale
// experiments. Compute, awaitB and advance probes cost 5 microseconds; the
// awaitE probe is cheaper because it reuses the pairing information the
// awaitB probe already gathered.
func PaperOverheads() instr.Overheads {
	return instr.Overheads{
		Event:   5 * us,
		Advance: 5 * us,
		AwaitB:  5 * us,
		AwaitE:  4 * us,
	}
}

// Def is a Livermore loop model plus paper-related metadata.
type Def struct {
	*program.Loop
	Description string
	// Figure1Ratio is the measured/actual slowdown the paper reports for
	// this kernel under full sequential instrumentation (Figure 1); zero
	// if the kernel is not part of Figure 1.
	Figure1Ratio float64
}

// Figure1Numbers lists the kernels shown in the paper's Figure 1, in
// presentation order.
func Figure1Numbers() []int { return []int{1, 2, 6, 7, 8, 13, 16, 19, 20, 22} }

// DoacrossNumbers lists the kernels the paper analyzes with event-based
// perturbation analysis (Tables 1 and 2).
func DoacrossNumbers() []int { return []int{3, 4, 17} }

// Numbers returns all defined kernel numbers in ascending order.
func Numbers() []int {
	ns := make([]int, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns
}

// Get returns the model of Livermore kernel n.
func Get(n int) (*Def, error) {
	f, ok := registry[n]
	if !ok {
		return nil, fmt.Errorf("loops: no model for Livermore kernel %d", n)
	}
	return f(), nil
}

// MustGet is Get for static kernel numbers; it panics on unknown kernels.
func MustGet(n int) *Def {
	d, err := Get(n)
	if err != nil {
		panic(err)
	}
	return d
}

var registry = map[int]func() *Def{
	1:  loop1,
	2:  loop2,
	3:  Loop3,
	4:  Loop4,
	5:  loop5,
	6:  loop6,
	7:  loop7,
	8:  loop8,
	9:  loop9,
	10: loop10,
	11: loop11,
	12: loop12,
	13: loop13,
	14: loop14,
	15: loop15,
	16: loop16,
	17: Loop17,
	18: loop18,
	19: loop19,
	20: loop20,
	21: loop21,
	22: loop22,
	23: loop23,
	24: loop24,
}

// vectorizableKernels marks the Figure-1 kernels whose bodies the Alliant
// compiler vectorizes: their statements carry the Vectorizable flag so the
// same model also runs in Vector mode (see the ScalarVector experiment).
var vectorizableKernels = map[int]bool{1: true, 7: true, 8: true, 22: true}

// seqKernel builds a sequential Figure-1 kernel whose per-iteration body
// cost is chosen so that full instrumentation with PaperOverheads yields
// the target measured/actual ratio: with k statements of total cost B and
// probe cost g, the slowdown is 1 + k*g/B, so B = k*g/(R-1).
func seqKernel(number int, name string, iters int, ratio float64, stmts []string) *Def {
	k := len(stmts)
	g := float64(PaperOverheads().Event)
	total := float64(k) * g / (ratio - 1)
	per := trace.Time(total / float64(k))
	b := program.NewBuilder(fmt.Sprintf("LL%d %s", number, name), number, program.Sequential, iters)
	b.Head("loop setup", 2*us)
	rem := trace.Time(total) - per*trace.Time(k)
	vec := vectorizableKernels[number]
	for i, s := range stmts {
		c := per
		if i == 0 {
			c += rem // keep the body total exact despite integer division
		}
		if vec {
			b.Vector(s, c)
		} else {
			b.Compute(s, c)
		}
	}
	b.Tail("checksum", 2*us)
	return &Def{Loop: b.Loop(), Description: name, Figure1Ratio: ratio}
}

// WithMode returns a copy of the kernel's loop set to execute in the given
// mode (for example Vector for the vectorizable kernels). The statement
// list is shared; only the mode differs.
func (d *Def) WithMode(m program.Mode) *program.Loop {
	l := *d.Loop
	l.Mode = m
	return &l
}

// VectorizableNumbers lists the Figure-1 kernels with vector-mode models.
func VectorizableNumbers() []int { return []int{1, 7, 8, 22} }

func loop1() *Def {
	return seqKernel(1, "hydro fragment", 400, 10.76, []string{
		"t1 = r*z[k+10] + t*z[k+11]",
		"t2 = q + y[k]*t1",
		"x[k] = t2",
	})
}

func loop2() *Def {
	return seqKernel(2, "ICCG excerpt", 400, 11.14, []string{
		"i = ipnt + ii",
		"t1 = z[i+1]*v[i]",
		"t2 = z[i+2]*v[i+1]",
		"x[ipntp+j] = x[i] - t1 - t2",
		"j = j + 1",
	})
}

func loop5() *Def {
	return seqKernel5(5, "tri-diagonal elimination, below diagonal", 400,
		[]string{"x[i] = z[i]*(y[i] - x[i-1])"}, 2*us)
}

func loop6() *Def {
	return seqKernel(6, "general linear recurrence equations", 300, 11.52, []string{
		"k = n - i",
		"t = b[k+1][i]*w[k-j]",
		"w[i+1] += t",
		"j = j + 1",
	})
}

func loop7() *Def {
	return seqKernel(7, "equation of state fragment", 300, 8.96, []string{
		"t1 = u[k+3] + r*(z[k+2] + r*y[k+2])",
		"t2 = u[k+6] + r*(u[k+5] + r*u[k+4])",
		"t3 = t*(t2 + r*t1)",
		"x[k] = u[k] + r*(z[k] + r*y[k]) + t3",
	})
}

func loop8() *Def {
	return seqKernel(8, "ADI integration", 150, 9.36, []string{
		"du1 = u1[kx][ky+1] - u1[kx][ky-1]",
		"du2 = u2[kx][ky+1] - u2[kx][ky-1]",
		"du3 = u3[kx][ky+1] - u3[kx][ky-1]",
		"u1n = u1[kx][ky] + a11*du1 + a12*du2 + a13*du3",
		"u1[kx+1][ky] = u1n + sig*(u1[kx+1][ky] - 2*u1[kx][ky] + u1[kx-1][ky])",
		"u2n = u2[kx][ky] + a21*du1 + a22*du2 + a23*du3",
		"u2[kx+1][ky] = u2n + sig*(u2[kx+1][ky] - 2*u2[kx][ky] + u2[kx-1][ky])",
		"u3n = u3[kx][ky] + a31*du1 + a32*du2 + a33*du3",
		"u3[kx+1][ky] = u3n + sig*(u3[kx+1][ky] - 2*u3[kx][ky] + u3[kx-1][ky])",
		"advance ky sweep",
	})
}

func loop13() *Def {
	return seqKernel(13, "2-D particle in cell", 200, 7.63, []string{
		"i1 = p[ip][0]",
		"j1 = p[ip][1]",
		"p[ip][2] += b[j1][i1]",
		"p[ip][3] += c[j1][i1]",
		"p[ip][0] += p[ip][2]",
		"p[ip][1] += p[ip][3]",
		"i2 = p[ip][0] & mask",
		"y[i2+32] += 1.0 (scatter)",
	})
}

func loop16() *Def {
	return seqKernel(16, "Monte Carlo search loop", 250, 4.98, []string{
		"k2 = k2 + 1",
		"j4 = j2 + k + k",
		"j5 = zone[j4]",
		"branch test (zone[j5] vs t)",
		"conditional search step",
		"loop-exit test",
	})
}

func loop19() *Def {
	return seqKernel(19, "general linear recurrence equations (2nd)", 300, 16.89, []string{
		"b5[k] = sa[k] + stb5*sb[k]",
		"stb5 = b5[k] - stb5",
		"backward pass mirror",
	})
}

func loop20() *Def {
	return seqKernel(20, "discrete ordinates transport", 200, 4.81, []string{
		"di = y[k] - g[k]/(xx[k] + dk)",
		"dn = 0.2",
		"if di != 0: dn = clamp(z[k]/di, .2, 2)",
		"x[k] = ((w[k] + v[k]*dn)*xx[k] + u[k])/(vx[k] + v[k]*dn)",
		"xx[k+1] = (x[k] - xx[k])*dn + xx[k]",
	})
}

func loop22() *Def {
	return seqKernel(22, "Planckian distribution", 250, 5.11, []string{
		"y[k] = u[k]/v[k]",
		"expmax guard",
		"w[k] = x[k]/(exp(y[k]) - 1)",
	})
}

// seqKernel5 builds a sequential kernel that is not part of Figure 1, with
// an explicit per-statement cost.
func seqKernel5(number int, name string, iters int, stmts []string, per trace.Time) *Def {
	b := program.NewBuilder(fmt.Sprintf("LL%d %s", number, name), number, program.Sequential, iters)
	b.Head("loop setup", 2*us)
	for _, s := range stmts {
		b.Compute(s, per)
	}
	b.Tail("checksum", 2*us)
	return &Def{Loop: b.Loop(), Description: name}
}

// doallKernel builds a concurrent loop without cross-iteration
// dependencies.
func doallKernel(number int, name string, iters int, stmts []string, per trace.Time) *Def {
	b := program.NewBuilder(fmt.Sprintf("LL%d %s", number, name), number, program.DOALL, iters)
	b.Head("loop setup", 2*us)
	for _, s := range stmts {
		b.Compute(s, per)
	}
	b.Tail("checksum", 2*us)
	return &Def{Loop: b.Loop(), Description: name}
}

func loop9() *Def {
	return doallKernel(9, "integrate predictors", 200, []string{
		"t1 = c0 + a0*px[i][4]",
		"t2 = a1*px[i][5] + a2*px[i][6]",
		"t3 = a3*px[i][7] + a4*px[i][8]",
		"t4 = a5*px[i][9] + a6*px[i][10]",
		"px[i][0] = px[i][2] + t1 + t2 + t3 + t4",
	}, us)
}

func loop10() *Def {
	return doallKernel(10, "difference predictors", 200, []string{
		"ar = cx[i][4]",
		"br = ar - px[i][4]; px[i][4] = ar",
		"cr = br - px[i][5]; px[i][5] = br",
		"ap = cr - px[i][6]; px[i][6] = cr",
		"difference cascade 7..13",
	}, us)
}

func loop11() *Def {
	return seqKernel5(11, "first sum (partial sums)", 500,
		[]string{"x[k] = x[k-1] + y[k]"}, us)
}

func loop12() *Def {
	return doallKernel(12, "first difference", 500,
		[]string{"x[k] = y[k+1] - y[k]"}, us)
}

func loop14() *Def {
	return seqKernel5(14, "1-D particle in cell", 200, []string{
		"ix = grd[k]",
		"xi = float(ix)",
		"vx[k] += ex[ix] + (x[k]-xi)*dex[ix]",
		"x[k] += vx[k]*flx",
		"ir = x[k] index wrap",
		"rx[k] deposit",
		"charge scatter",
	}, us)
}

func loop15() *Def {
	return seqKernel5(15, "casual Fortran (hydro velocities)", 150, []string{
		"boundary tests ng/nz",
		"t = ar branch",
		"vy[i][j] select",
		"vx[i][j] select",
		"update grind",
	}, 3*us/2)
}

func loop18() *Def {
	return doallKernel(18, "2-D explicit hydrodynamics fragment", 150, []string{
		"za[j][k] quotient",
		"zb[j][k] quotient",
		"zu[j][k] update",
		"zv[j][k] update",
		"zr[j][k], zz[j][k] advance",
	}, 2*us)
}

func loop21() *Def {
	return doallKernel(21, "matrix * matrix product", 125, []string{
		"px[i][j] += vy[i][k]*cx[k][j] (inner strip)",
	}, 12*us)
}

func loop23() *Def {
	return doallKernel(23, "2-D implicit hydrodynamics fragment", 150, []string{
		"qa = za[j][k+1]*zr[j][k] + za[j][k-1]*zb[j][k]",
		"qa += za[j+1][k]*zu[j][k] + za[j-1][k]*zv[j][k]",
		"za[j][k] += 0.175*(qa - za[j][k])",
	}, 2*us)
}

func loop24() *Def {
	return seqKernel5(24, "first min (argmin search)", 500,
		[]string{"if x[k] < x[m]: m = k"}, us)
}
