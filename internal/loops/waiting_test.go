package loops_test

import (
	"testing"

	"perturb/internal/core"
	"perturb/internal/instr"
	"perturb/internal/loops"
	"perturb/internal/machine"
	"perturb/internal/metrics"
	"perturb/internal/trace"
)

// TestLoop17Waiting verifies the paper's Table 3 / Figure 5 shape: small
// (roughly 2-9%) non-uniform per-processor waiting in the approximated
// execution of loop 17, and an average parallelism near 7.5 of 8 excluding
// the sequential portions.
func TestLoop17Waiting(t *testing.T) {
	cfg := machine.Alliant()
	ovh := loops.PaperOverheads()
	cal := instr.Exact(ovh, cfg.SNoWait, cfg.SWait, cfg.AdvanceOp, cfg.Barrier)
	def := loops.MustGet(17)

	measured, err := machine.Run(def.Loop, instr.FullPlan(ovh, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := core.EventBased(measured.Trace, cal)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := metrics.Waiting(approx.Trace, cal)
	if err != nil {
		t.Fatal(err)
	}
	pct := metrics.WaitingPercent(ws, approx.Duration)
	t.Logf("LL17 waiting %% by processor: %v", fmtPct(pct))

	var min, max float64
	for p, v := range pct {
		if p == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max <= min {
		t.Errorf("waiting should be non-uniform across processors: min %.2f max %.2f", min, max)
	}
	if min < 0.5 || max > 12 {
		t.Errorf("waiting percentages out of the paper's band: min %.2f max %.2f (paper 2.70-8.09)", min, max)
	}

	prof, err := metrics.Parallelism(approx.Trace, cal)
	if err != nil {
		t.Fatal(err)
	}
	// Average over the concurrent portion: from the loop-begin to the
	// barrier release.
	loopStart, loopEnd := concurrentSpan(t, approx)
	avg := prof.Average(loopStart, loopEnd)
	t.Logf("LL17 average parallelism (concurrent portion): %.2f (paper 7.5)", avg)
	if avg < 7.0 || avg > 7.95 {
		t.Errorf("average parallelism %.2f outside [7.0, 7.95] (paper 7.5)", avg)
	}
}

func fmtPct(p []float64) []float64 {
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = float64(int(v*100+0.5)) / 100
	}
	return out
}

func concurrentSpan(t *testing.T, a *core.Approximation) (from, to trace.Time) {
	t.Helper()
	var begin, release trace.Time = -1, -1
	for _, e := range a.Trace.Events {
		switch e.Kind {
		case trace.KindLoopBegin:
			if begin < 0 {
				begin = e.Time
			}
		case trace.KindBarrierRelease:
			release = e.Time
		}
	}
	if begin < 0 || release < 0 {
		t.Fatal("trace lacks loop-begin or barrier-release markers")
	}
	return begin, release
}
