package loops_test

import (
	"testing"

	"perturb/internal/core"
	"perturb/internal/instr"
	"perturb/internal/loops"
	"perturb/internal/machine"
)

// TestDoacrossCalibration verifies that the calibrated DOACROSS kernels
// reproduce the paper's Table 1 and Table 2 execution-time ratios within a
// modest tolerance (the reproduction targets shape, not digits).
func TestDoacrossCalibration(t *testing.T) {
	paper := map[int]struct{ m1, t1, m2 float64 }{
		3:  {2.48, 0.37, 4.56},
		4:  {2.64, 0.57, 3.38},
		17: {9.97, 8.31, 14.08},
	}
	cfg := machine.Alliant()
	ovh := loops.PaperOverheads()
	cal := instr.Exact(ovh, cfg.SNoWait, cfg.SWait, cfg.AdvanceOp, cfg.Barrier)

	for _, n := range loops.DoacrossNumbers() {
		def := loops.MustGet(n)
		actual, err := machine.Run(def.Loop, instr.NonePlan(), cfg)
		if err != nil {
			t.Fatalf("LL%d actual: %v", n, err)
		}
		m1, err := machine.Run(def.Loop, instr.FullPlan(ovh, false), cfg)
		if err != nil {
			t.Fatalf("LL%d table-1 measured: %v", n, err)
		}
		m2, err := machine.Run(def.Loop, instr.FullPlan(ovh, true), cfg)
		if err != nil {
			t.Fatalf("LL%d table-2 measured: %v", n, err)
		}
		tb, err := core.TimeBased(m1.Trace, cal)
		if err != nil {
			t.Fatalf("LL%d time-based: %v", n, err)
		}
		eb, err := core.EventBased(m2.Trace, cal)
		if err != nil {
			t.Fatalf("LL%d event-based: %v", n, err)
		}
		gotM1 := float64(m1.Duration) / float64(actual.Duration)
		gotT1 := float64(tb.Duration) / float64(actual.Duration)
		gotM2 := float64(m2.Duration) / float64(actual.Duration)
		gotEB := float64(eb.Duration) / float64(actual.Duration)
		want := paper[n]
		t.Logf("LL%d: measured/actual T1 %.2f (paper %.2f)  timebased/actual %.2f (paper %.2f)  measured/actual T2 %.2f (paper %.2f)  eventbased/actual %.3f (paper ~1)",
			n, gotM1, want.m1, gotT1, want.t1, gotM2, want.m2, gotEB)
		checkNear(t, n, "measured/actual (Table 1)", gotM1, want.m1, 0.20)
		checkNear(t, n, "time-based/actual (Table 1)", gotT1, want.t1, 0.20)
		checkNear(t, n, "measured/actual (Table 2)", gotM2, want.m2, 0.20)
		if gotEB < 0.98 || gotEB > 1.02 {
			t.Errorf("LL%d: event-based/actual = %.4f, want ~1.0 with exact calibration", n, gotEB)
		}
	}
}

func checkNear(t *testing.T, n int, what string, got, want, relTol float64) {
	t.Helper()
	if got < want*(1-relTol) || got > want*(1+relTol) {
		t.Errorf("LL%d: %s = %.3f, paper %.3f (tolerance %.0f%%)", n, what, got, want, relTol*100)
	}
}
