package loops_test

import (
	"testing"

	"perturb/internal/core"
	"perturb/internal/instr"
	"perturb/internal/loops"
	"perturb/internal/machine"
	"perturb/internal/order"
	"perturb/internal/program"
)

// TestAllKernelsSimulate: every kernel model validates, simulates under
// both the omniscient observer and full instrumentation, and produces a
// well-formed trace the analyses accept.
func TestAllKernelsSimulate(t *testing.T) {
	cfg := machine.Alliant()
	ovh := loops.PaperOverheads()
	cal := instr.Exact(ovh, cfg.SNoWait, cfg.SWait, cfg.AdvanceOp, cfg.Barrier)
	nums := loops.Numbers()
	if len(nums) != 24 {
		t.Fatalf("kernel count = %d, want 24", len(nums))
	}
	for _, n := range nums {
		def, err := loops.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := def.Validate(); err != nil {
			t.Fatalf("LL%d: %v", n, err)
		}
		actual, err := machine.Run(def.Loop, instr.NonePlan(), cfg)
		if err != nil {
			t.Fatalf("LL%d actual: %v", n, err)
		}
		measured, err := machine.Run(def.Loop, instr.FullPlan(ovh, true), cfg)
		if err != nil {
			t.Fatalf("LL%d measured: %v", n, err)
		}
		if err := measured.Trace.Validate(); err != nil {
			t.Fatalf("LL%d trace: %v", n, err)
		}
		if err := order.CheckSelf(measured.Trace); err != nil {
			t.Fatalf("LL%d order: %v", n, err)
		}
		approx, err := core.EventBased(measured.Trace, cal)
		if err != nil {
			t.Fatalf("LL%d analysis: %v", n, err)
		}
		ratio := float64(approx.Duration) / float64(actual.Duration)
		if ratio < 0.999 || ratio > 1.001 {
			t.Errorf("LL%d: exact-calibration recovery ratio %.4f", n, ratio)
		}
	}
}

func TestKernelMetadata(t *testing.T) {
	for _, n := range loops.Figure1Numbers() {
		def := loops.MustGet(n)
		if def.Figure1Ratio <= 1 {
			t.Errorf("LL%d: Figure1Ratio = %v", n, def.Figure1Ratio)
		}
		if def.Mode != program.Sequential {
			t.Errorf("LL%d: Figure-1 kernels are sequential, got %v", n, def.Mode)
		}
	}
	for _, n := range loops.DoacrossNumbers() {
		def := loops.MustGet(n)
		if def.Mode != program.DOACROSS {
			t.Errorf("LL%d: expected DOACROSS, got %v", n, def.Mode)
		}
		if len(def.SyncVars()) == 0 {
			t.Errorf("LL%d: DOACROSS kernel without sync vars", n)
		}
	}
	if _, err := loops.Get(0); err == nil {
		t.Error("kernel 0 should not exist")
	}
	if _, err := loops.Get(25); err == nil {
		t.Error("kernel 25 should not exist")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet(99) should panic")
		}
	}()
	loops.MustGet(99)
}

// TestWithModeVector: vectorizable kernels run faster in vector mode and
// the copy does not alias the default mode.
func TestWithModeVector(t *testing.T) {
	cfg := machine.Alliant()
	for _, n := range loops.VectorizableNumbers() {
		def := loops.MustGet(n)
		if def.Mode != program.Sequential {
			t.Fatalf("LL%d: unexpected base mode %v", n, def.Mode)
		}
		vec := def.WithMode(program.Vector)
		if def.Mode != program.Sequential {
			t.Fatalf("WithMode mutated the original definition")
		}
		seq, err := machine.Run(def.Loop, instr.NonePlan(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := machine.Run(vec, instr.NonePlan(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v.Duration >= seq.Duration {
			t.Errorf("LL%d: vector %d not faster than scalar %d", n, v.Duration, seq.Duration)
		}
	}
}

// TestFigure1RatiosMatchTargets: full instrumentation reproduces the
// calibrated measured/actual ratio of every Figure-1 kernel within 1%.
func TestFigure1RatiosMatchTargets(t *testing.T) {
	cfg := machine.Alliant()
	ovh := loops.PaperOverheads()
	for _, n := range loops.Figure1Numbers() {
		def := loops.MustGet(n)
		actual, err := machine.Run(def.Loop, instr.NonePlan(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		measured, err := machine.Run(def.Loop, instr.FullPlan(ovh, false), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(measured.Duration) / float64(actual.Duration)
		if got < def.Figure1Ratio*0.99 || got > def.Figure1Ratio*1.01 {
			t.Errorf("LL%d: measured/actual %.3f vs target %.2f", n, got, def.Figure1Ratio)
		}
	}
}
