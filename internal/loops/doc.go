package loops

// Calibration derivation for the DOACROSS kernels (loops 3, 4, 17)
//
// Machine costs (machine.Alliant()): s_nowait = 0.3us, s_wait = 0.5us,
// advance op = 0.2us. Probe costs (PaperOverheads()): compute/awaitB/
// advance probes g = 5us, awaitE probe 4us; so a critical region gains
// S = 9us of serialized probe time in the Table-2 configuration (awaitE +
// advance probes land inside the advance chain).
//
// Notation per loop: w = per-iteration independent work over kw
// statements; c = critical-region work over kc statements; P = 8
// processors. Two regimes matter:
//
//   - chain bound: the advance chain serializes execution; the
//     per-iteration slot is the chain step (s_wait + c + adv for the
//     actual run) and processors wait at their awaits;
//   - processor bound: per-processor work (w + c + s + waiting-free
//     overheads) exceeds P chain steps, so awaits find their advances
//     already posted.
//
// The six Table 1/2 ratios then pin the parameters:
//
// Loops 3 and 4 (actual chain bound; Table-1 measured processor bound;
// Table-2 measured chain bound):
//
//	actual slot        A  = s_wait + c + adv = 0.7us + c
//	Table-2 measured   M2 = A + kc*g + S            (chain gains probes)
//	M2/A = paper ratio  => c                         (kc = 1)
//	time-based approx  T1 = (w + c + s)/(8A)         (waiting lost)
//	T1 = paper ratio    => w
//	Table-1 measured   M1 = (w + c + s + (kw+1)g)/(8A)
//	M1 = paper ratio    => kw
//
// For loop 3: c = 3.23us, w = 7.90us over kw = 12 statements. For loop 4:
// c = 5.18us, w = 21.14us over kw = 19. Both must also satisfy the regime
// inequalities (checked by TestDoacrossCalibration):
//
//	actual chain bound:      w + c + s      <  8(0.7 + c)
//	T1 measured proc bound:  w + kw*g + ... >  8(0.7 + c + g)
//
// Loop 17 (actual at the chain/processor boundary; both measured runs
// chain bound; the critical region carries most probes — the paper's
// "critical section includes tracing code when instrumented"):
//
//	chain1 = 0.7 + c + kc*g           (Table-1 chain step)
//	chain2 = chain1 + S               (Table-2 chain step)
//	M2 - M1 = 8*S/A  =>  A (actual slot) = 8*9/4.11 = 17.5us
//	M1 = 8*chain1/A  =>  chain1 = 21.8us  =>  kc = 4, c = 1.13us
//	T1 = (8*chain1 - (kw+kc)g)/A  =>  kw = 2, w = A - c - 0.5 = 15.9us
//
// The per-iteration independent work carries +-3us deterministic jitter
// (the kernel's data-dependent conditionals), which at the regime boundary
// produces the small, non-uniform per-processor waits of Table 3 and the
// parallelism dips of Figure 5. The final constants were nudged (w base
// 5305ns per statement) so the simulated ratios land within ~1% of all
// six paper values — see calibration_test.go for the tolerances enforced.
//
// The Figure-1 sequential kernels need only one equation each: with k
// statements of total cost B under probe g, the measured slowdown is
// 1 + k*g/B, so B = k*g/(R-1) hits the paper's per-loop ratio R exactly;
// statement counts follow each kernel's source structure.
