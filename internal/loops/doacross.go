package loops

import (
	"perturb/internal/program"
	"perturb/internal/trace"
)

// The three DOACROSS kernels are calibrated jointly against the six
// execution-time ratios of the paper's Tables 1 and 2, under the machine
// costs of machine.Alliant() (s_nowait 0.3us, s_wait 0.5us, advance op
// 0.2us) and the probe costs of PaperOverheads(). Writing g for the 5us
// compute-probe cost, S for the 9us of sync probes a critical region gains
// in the Table-2 configuration (awaitE 4us + advance 5us), w/c for the
// per-iteration independent/critical work and kw/kc for their statement
// counts, the regimes are:
//
//   - actual execution of loops 3 and 4 is chain-bound: the serialized
//     critical region dominates, per-iteration slot = s_wait + c + adv;
//   - their Table-1 measured runs are processor-bound: probe overhead on
//     the kw independent statements delays arrival at the critical section
//     until blocking (almost) disappears — the effect the paper describes;
//   - their Table-2 measured runs are chain-bound again (sync probes land
//     inside the serialized region), which is why measured/actual rises
//     from 2.48/2.64 to 4.56/3.38;
//   - loop 17's actual execution is processor-bound with small jitter-
//     driven waits (Table 3), while both measured runs are chain-bound:
//     its critical region carries most of the probes ("the critical
//     section ... includes tracing code when instrumented"), inflating
//     contention that time-based analysis cannot remove (8.31 vs 9.97).
//
// Solving the three ratio equations per loop gives the parameters below;
// the experiment harness (internal/experiments) checks the resulting
// ratios against the paper values and EXPERIMENTS.md records both.

// Loop3 is Livermore kernel 3, the inner product q += z[k]*x[k]. On the
// simulated machine it executes concurrent-outer: each iteration computes
// a strip partial product independently and then updates the shared
// accumulator inside an advance/await critical region of distance 1
// (Figure 3, left).
func Loop3() *Def {
	const (
		iters    = 1001
		preStmts = 12
		preTotal = 7900 // w  = 7.90us over 12 statements
		critCost = 3230 // c  = 3.23us shared update
	)
	b := program.NewBuilder("LL3 inner product", 3, program.DOACROSS, iters)
	b.Head("q = 0; strip setup", 3*us)
	addSplit(b, "strip partial product", preStmts, preTotal)
	b.CriticalBegin(0)
	b.Compute("q += partial (shared update)", critCost)
	b.CriticalEnd(0)
	b.Tail("store q", 2*us)
	return &Def{Loop: b.Loop(), Description: "inner product"}
}

// Loop4 is Livermore kernel 4, banded linear equations. Each iteration
// eliminates one band segment (a longer independent dot-product strip than
// loop 3) and then updates the shared pivot row inside the critical region
// (Figure 3, right).
func Loop4() *Def {
	const (
		iters    = 320
		preStmts = 19
		preTotal = 21140 // w = 21.14us over 19 statements
		critCost = 5180  // c = 5.18us pivot update
	)
	b := program.NewBuilder("LL4 banded linear equations", 4, program.DOACROSS, iters)
	b.Head("band setup", 3*us)
	addSplit(b, "band dot-product segment", preStmts, preTotal)
	b.CriticalBegin(0)
	b.Compute("xx[...] pivot update (shared)", critCost)
	b.CriticalEnd(0)
	b.Tail("store band", 2*us)
	return &Def{Loop: b.Loop(), Description: "banded linear equations"}
}

// Loop17 is Livermore kernel 17, implicit conditional computation. The
// independent portion is two expensive, data-dependent (jittered)
// conditional statements; the critical region is four short statements
// carrying the cross-iteration recurrence (Figure 3, middle). With full
// instrumentation the four probes inside the critical region dominate the
// serialized time — the paper's "critical section includes tracing code"
// effect.
func Loop17() *Def {
	const iters = 176
	b := program.NewBuilder("LL17 implicit conditional computation", 17, program.DOACROSS, iters)
	b.Head("scale/xnm setup", 4*us)
	b.Head("branch tables", 4*us)
	// Two conditional statements, mean 6.805us each (5.305 base plus
	// jitter uniform in [0,3us), mean 1.5us): the actual execution sits at
	// the chain/processor boundary, so jitter produces the small,
	// non-uniform per-processor waits of Table 3.
	b.ComputeJitter("conditional eval: vsp/vstp branches", 5305, 3*us)
	b.ComputeJitter("conditional eval: xnz chain", 5305, 3*us)
	b.CriticalBegin(0)
	// Four short recurrence statements, mean 282.5ns each (132.5 base
	// plus jitter in [0,300ns), mean 150ns); total mean c = 1.13us.
	b.ComputeJitter("xnm = ...", 132, 300)
	b.ComputeJitter("vlr update", 133, 300)
	b.ComputeJitter("vsp recurrence", 132, 300)
	b.ComputeJitter("scale handoff", 133, 300)
	b.CriticalEnd(0)
	b.Tail("k = n; tail reduction", 4*us)
	b.Tail("store scale", 4*us)
	return &Def{Loop: b.Loop(), Description: "implicit, conditional computation"}
}

// addSplit appends n compute statements whose costs sum exactly to total.
func addSplit(b *program.Builder, label string, n int, total trace.Time) {
	per := total / trace.Time(n)
	rem := total - per*trace.Time(n)
	for i := 0; i < n; i++ {
		c := per
		if i == 0 {
			c += rem
		}
		b.Compute(label, c)
	}
}
