package faults_test

import (
	"testing"

	"perturb/internal/faults"
	"perturb/internal/trace"
)

// syntheticTrace builds a two-processor trace with computes, an
// advance/await pair per iteration, loop markers, and a closing barrier.
func syntheticTrace(iters int) *trace.Trace {
	tr := trace.New(2)
	base := trace.Time(0)
	tr.Append(trace.Event{Time: base, Stmt: -1, Proc: 0, Kind: trace.KindLoopBegin, Iter: trace.NoIter, Var: trace.NoVar})
	for i := 0; i < iters; i++ {
		b := base + trace.Time(i)*100
		tr.Append(trace.Event{Time: b + 10, Stmt: 1, Proc: 0, Kind: trace.KindCompute, Iter: i, Var: trace.NoVar})
		tr.Append(trace.Event{Time: b + 20, Stmt: 2, Proc: 0, Kind: trace.KindAdvance, Iter: i, Var: 5})
		tr.Append(trace.Event{Time: b + 12, Stmt: 3, Proc: 1, Kind: trace.KindAwaitB, Iter: i, Var: 5})
		tr.Append(trace.Event{Time: b + 25, Stmt: 3, Proc: 1, Kind: trace.KindAwaitE, Iter: i, Var: 5})
		tr.Append(trace.Event{Time: b + 40, Stmt: 4, Proc: 1, Kind: trace.KindCompute, Iter: i, Var: trace.NoVar})
	}
	end := base + trace.Time(iters)*100
	for p := 0; p < 2; p++ {
		tr.Append(trace.Event{Time: end + trace.Time(p), Stmt: -2, Proc: p, Kind: trace.KindBarrierArrive, Iter: 0, Var: 0})
		tr.Append(trace.Event{Time: end + 10, Stmt: -2, Proc: p, Kind: trace.KindBarrierRelease, Iter: 0, Var: 0})
	}
	tr.Append(trace.Event{Time: end + 20, Stmt: -1, Proc: 0, Kind: trace.KindLoopEnd, Iter: trace.NoIter, Var: trace.NoVar})
	tr.Normalize()
	return tr
}

func sameEvents(a, b *trace.Trace) bool {
	if a.Procs != b.Procs || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

func TestInjectZeroSpecIsIdentity(t *testing.T) {
	tr := syntheticTrace(50)
	out, rep := faults.Inject(tr, faults.Spec{})
	if rep.Total() != 0 {
		t.Fatalf("zero spec injected faults: %v", rep)
	}
	if !sameEvents(tr, out) {
		t.Fatal("zero spec changed the trace")
	}
	if rep.String() != "no faults" {
		t.Fatalf("empty report string = %q", rep.String())
	}
}

func TestInjectDeterministic(t *testing.T) {
	tr := syntheticTrace(200)
	spec := faults.Uniform(0.05, 42)
	spec.SkewProc, spec.TruncateProc = 0.5, 0.5
	a, repA := faults.Inject(tr, spec)
	b, repB := faults.Inject(tr, spec)
	if !sameEvents(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if repA.Total() != repB.Total() {
		t.Fatalf("report totals differ: %d vs %d", repA.Total(), repB.Total())
	}
	spec.Seed = 43
	c, _ := faults.Inject(tr, spec)
	if sameEvents(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestInjectInputNeverModified(t *testing.T) {
	tr := syntheticTrace(100)
	before := append([]trace.Event(nil), tr.Events...)
	spec := faults.Uniform(0.2, 7)
	spec.SkewProc, spec.TruncateProc = 1, 1
	faults.Inject(tr, spec)
	for i := range before {
		if tr.Events[i] != before[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestInjectDropProbe(t *testing.T) {
	tr := syntheticTrace(200)
	out, rep := faults.Inject(tr, faults.Spec{Seed: 1, DropProbe: 0.1})
	if rep.DroppedProbes == 0 {
		t.Fatal("no probes dropped at 10%")
	}
	if got := tr.CountKind(trace.KindCompute) - out.CountKind(trace.KindCompute); got != rep.DroppedProbes {
		t.Fatalf("compute delta %d != reported %d", got, rep.DroppedProbes)
	}
	// Only computes are eligible: sync population must be intact.
	for _, k := range []trace.Kind{trace.KindAdvance, trace.KindAwaitB, trace.KindAwaitE} {
		if out.CountKind(k) != tr.CountKind(k) {
			t.Fatalf("%v count changed under DropProbe", k)
		}
	}
}

func TestInjectDropSync(t *testing.T) {
	tr := syntheticTrace(200)
	out, rep := faults.Inject(tr, faults.Spec{Seed: 1, DropSync: 0.1})
	if rep.DroppedSync == 0 {
		t.Fatal("no sync sides dropped at 10%")
	}
	if out.CountKind(trace.KindCompute) != tr.CountKind(trace.KindCompute) {
		t.Fatal("compute count changed under DropSync")
	}
	lost := 0
	for _, k := range []trace.Kind{trace.KindAdvance, trace.KindAwaitB, trace.KindAwaitE,
		trace.KindBarrierArrive, trace.KindBarrierRelease} {
		lost += tr.CountKind(k) - out.CountKind(k)
	}
	if lost != rep.DroppedSync {
		t.Fatalf("sync delta %d != reported %d", lost, rep.DroppedSync)
	}
}

func TestInjectNeverTouchesLoopMarkers(t *testing.T) {
	tr := syntheticTrace(100)
	spec := faults.Uniform(0.9, 3)
	out, _ := faults.Inject(tr, spec)
	for _, k := range []trace.Kind{trace.KindLoopBegin, trace.KindLoopEnd} {
		if out.CountKind(k) < tr.CountKind(k) {
			t.Fatalf("%v dropped; loop markers are exempt", k)
		}
	}
}

func TestInjectDuplicate(t *testing.T) {
	tr := syntheticTrace(200)
	out, rep := faults.Inject(tr, faults.Spec{Seed: 9, Duplicate: 0.1})
	if rep.Duplicated == 0 {
		t.Fatal("nothing duplicated at 10%")
	}
	if len(out.Events) != len(tr.Events)+rep.Duplicated {
		t.Fatalf("event count %d, want %d", len(out.Events), len(tr.Events)+rep.Duplicated)
	}
}

func TestInjectClockSkew(t *testing.T) {
	tr := syntheticTrace(50)
	out, rep := faults.Inject(tr, faults.Spec{Seed: 4, SkewProc: 1, SkewMag: 500})
	if len(rep.SkewedProcs) != tr.Procs {
		t.Fatalf("skewed %d procs, want all %d", len(rep.SkewedProcs), tr.Procs)
	}
	// Every event moved by exactly ±500.
	shift := map[int]trace.Dur{}
	for _, e := range tr.Events {
		shift[e.Proc] = 0
	}
	perIn, perOut := tr.ByProc(), out.ByProc()
	for p := range perIn {
		if len(perIn[p]) == 0 {
			continue
		}
		d := perOut[p][0].Time - perIn[p][0].Time
		if d != 500 && d != -500 {
			t.Fatalf("proc %d shifted by %d, want ±500", p, d)
		}
		for i := range perIn[p] {
			if perOut[p][i].Time-perIn[p][i].Time != d {
				t.Fatalf("proc %d skew not uniform", p)
			}
		}
	}
}

func TestInjectTruncateTail(t *testing.T) {
	tr := syntheticTrace(100)
	out, rep := faults.Inject(tr, faults.Spec{Seed: 5, TruncateProc: 1, TruncateFrac: 0.2})
	if len(rep.TruncatedProcs) != tr.Procs {
		t.Fatalf("truncated %d procs, want all %d", len(rep.TruncatedProcs), tr.Procs)
	}
	if rep.TruncatedEvents == 0 {
		t.Fatal("no events truncated")
	}
	perIn, perOut := tr.ByProc(), out.ByProc()
	for p := range perIn {
		if len(perOut[p]) >= len(perIn[p]) {
			t.Fatalf("proc %d not truncated: %d -> %d", p, len(perIn[p]), len(perOut[p]))
		}
		// The surviving prefix is untouched.
		for i := range perOut[p] {
			if perOut[p][i] != perIn[p][i] {
				t.Fatalf("proc %d event %d changed under truncation", p, i)
			}
		}
	}
}

func TestInjectReorder(t *testing.T) {
	tr := syntheticTrace(200)
	out, rep := faults.Inject(tr, faults.Spec{Seed: 6, Reorder: 0.1})
	if rep.Reordered == 0 {
		t.Fatal("nothing reordered at 10%")
	}
	if len(out.Events) != len(tr.Events) {
		t.Fatal("reorder changed event count")
	}
	// Multiset of (proc, kind, stmt) unchanged; only times moved.
	type id struct {
		p, s int
		k    trace.Kind
	}
	count := map[id]int{}
	for _, e := range tr.Events {
		count[id{e.Proc, e.Stmt, e.Kind}]++
	}
	for _, e := range out.Events {
		count[id{e.Proc, e.Stmt, e.Kind}]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("event population changed: %+v x%d", k, v)
		}
	}
}

func TestInjectedTraceRepairs(t *testing.T) {
	// Every fault class, all at once, must leave a trace the sanitizer
	// can bring back to a Validate-clean state.
	tr := syntheticTrace(100)
	spec := faults.Uniform(0.05, 11)
	spec.SkewProc, spec.SkewMag = 0.5, 300
	spec.TruncateProc, spec.TruncateFrac = 0.5, 0.1
	corrupted, rep := faults.Inject(tr, spec)
	if rep.Total() == 0 {
		t.Fatal("no faults injected")
	}
	repaired, rrep := trace.Repair(corrupted)
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired trace fails Validate: %v\nfaults: %v\nrepair: %v",
			err, rep, rrep.Summary())
	}
}
