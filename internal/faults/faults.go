// Package faults corrupts event traces the way production tracers do
// under buffer pressure: probes are dropped, one side of a
// synchronization pair goes missing, a processor's trace buffer wraps and
// loses its tail, records are duplicated or reordered in flight, and
// unsynchronized clocks skew a processor's timestamps.
//
// Injection is deterministic and seedable: the same trace, Spec and seed
// always produce the same corrupted trace, so experiments that sweep
// fault rates are reproducible run to run. The injector never invents
// information — every fault removes, copies, or retimes events the input
// already has — and never touches loop-begin/loop-end markers, which the
// runtime emits outside the probe buffer path.
package faults

import (
	"fmt"
	"strings"

	"perturb/internal/trace"
)

// Spec configures one injection pass. Zero value: no faults.
//
// The per-event fields are probabilities in [0, 1] applied independently
// to each eligible event. The per-processor fields select whole-processor
// faults: each processor is afflicted independently with the given
// probability.
type Spec struct {
	// Seed selects the deterministic random stream. Two runs with equal
	// traces, Specs and Seeds corrupt identically.
	Seed uint64

	// DropProbe drops an ordinary computation event: a probe record lost
	// to a full buffer.
	DropProbe float64
	// DropSync drops one side of a synchronization construct: an advance,
	// one half of an awaitB/awaitE or lock-req/lock-acq bracket, or a
	// barrier arrive/release record.
	DropSync float64
	// Duplicate emits an event twice, as retried buffer flushes do.
	Duplicate float64
	// Reorder swaps an event's timestamp with its successor on the same
	// processor: two records that left the buffer in the wrong order.
	Reorder float64

	// SkewProc is the probability a processor's clock is skewed; SkewMag
	// is the offset magnitude (sign is seeded per processor). SkewMag
	// defaults to 2µs when SkewProc > 0.
	SkewProc float64
	SkewMag  trace.Dur
	// TruncateProc is the probability a processor loses its tail;
	// TruncateFrac is the fraction of the processor's events cut
	// (default 0.05).
	TruncateProc float64
	TruncateFrac float64
}

// Uniform returns a Spec injecting every per-event fault class at the
// given rate. Whole-processor faults (skew, truncation) stay off; enable
// them explicitly.
func Uniform(rate float64, seed uint64) Spec {
	return Spec{Seed: seed, DropProbe: rate, DropSync: rate, Duplicate: rate, Reorder: rate}
}

// DropsOnly returns a Spec injecting only drop faults (probe and sync
// sides) at the given rate — the failure mode the robustness experiment
// sweeps.
func DropsOnly(rate float64, seed uint64) Spec {
	return Spec{Seed: seed, DropProbe: rate, DropSync: rate}
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.DropProbe > 0 || s.DropSync > 0 || s.Duplicate > 0 || s.Reorder > 0 ||
		s.SkewProc > 0 || s.TruncateProc > 0
}

// Report counts the faults one injection pass actually placed.
type Report struct {
	DroppedProbes  int
	DroppedSync    int
	Duplicated     int
	Reordered      int
	SkewedProcs    []int
	TruncatedProcs []int
	// TruncatedEvents counts events removed by tail truncation.
	TruncatedEvents int
}

// Total returns the number of injected faults (whole-processor faults
// count once per afflicted processor).
func (r *Report) Total() int {
	return r.DroppedProbes + r.DroppedSync + r.Duplicated + r.Reordered +
		len(r.SkewedProcs) + len(r.TruncatedProcs)
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	if r.Total() == 0 {
		return "no faults"
	}
	var parts []string
	add := func(n int, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(r.DroppedProbes, "probes dropped")
	add(r.DroppedSync, "sync sides dropped")
	add(r.Duplicated, "duplicated")
	add(r.Reordered, "reordered")
	add(len(r.SkewedProcs), "procs skewed")
	add(len(r.TruncatedProcs), "procs truncated")
	return strings.Join(parts, ", ")
}

// Salts separating the random streams of the fault classes, so enabling
// one class never changes another's choices.
const (
	saltDropProbe = 0xFA17 + iota
	saltDropSync
	saltDuplicate
	saltReorder
	saltSkew
	saltSkewSign
	saltTruncate
	saltTruncateFrac
)

// mix is a splitmix64-style hash over (seed, index, salt); the same
// scheme instr.Perturbed uses for deterministic calibration noise.
func mix(seed, n, salt uint64) uint64 {
	x := seed*0x9E3779B97F4A7C15 + n*0xBF58476D1CE4E5B9 + salt*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hit decides one Bernoulli trial on the class stream for item n.
func (s Spec) hit(n uint64, salt uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	return unit(mix(s.Seed, n, salt)) < p
}

// Inject returns a corrupted copy of the trace along with a report of the
// faults placed. The input is never modified. The output is sorted into
// canonical order — corruption mimics what a consumer would read back
// from damaged buffers, not the buffers' internal layout.
func Inject(t *trace.Trace, spec Spec) (*trace.Trace, *Report) {
	rep := &Report{}
	out := trace.NewWithCap(t.Procs, t.Len()+t.Len()/8)
	if !spec.Enabled() {
		out.Events = append(out.Events, t.Events...)
		return out, rep
	}

	// Whole-processor afflictions, decided up front on per-proc streams.
	skew := make(map[int]trace.Dur)
	truncAt := make(map[int]int) // proc -> number of tail events to cut
	perProc := make(map[int]int) // proc -> event count
	for _, e := range t.Events {
		perProc[e.Proc]++
	}
	skewMag := spec.SkewMag
	if skewMag == 0 {
		skewMag = 2 * trace.Microsecond
	}
	truncFrac := spec.TruncateFrac
	if truncFrac == 0 {
		truncFrac = 0.05
	}
	for p := 0; p < t.Procs; p++ {
		if spec.hit(uint64(p), saltSkew, spec.SkewProc) {
			d := skewMag
			if mix(spec.Seed, uint64(p), saltSkewSign)&1 == 1 {
				d = -d
			}
			skew[p] = d
			rep.SkewedProcs = append(rep.SkewedProcs, p)
		}
		if spec.hit(uint64(p), saltTruncate, spec.TruncateProc) && perProc[p] > 0 {
			n := int(float64(perProc[p]) * truncFrac * unit(mix(spec.Seed, uint64(p), saltTruncateFrac)))
			if n < 1 {
				n = 1
			}
			truncAt[p] = perProc[p] - n
			rep.TruncatedProcs = append(rep.TruncatedProcs, p)
		}
	}

	seenPerProc := make(map[int]int)
	for i, e := range t.Events {
		n := uint64(i)
		pos := seenPerProc[e.Proc]
		seenPerProc[e.Proc]++

		// Tail truncation: everything at or past the cut is lost.
		if cut, ok := truncAt[e.Proc]; ok && pos >= cut {
			rep.TruncatedEvents++
			continue
		}

		switch e.Kind {
		case trace.KindLoopBegin, trace.KindLoopEnd:
			// Runtime-emitted markers, outside the probe buffer path.
		case trace.KindCompute:
			if spec.hit(n, saltDropProbe, spec.DropProbe) {
				rep.DroppedProbes++
				continue
			}
		default:
			if e.Kind.IsSync() && spec.hit(n, saltDropSync, spec.DropSync) {
				rep.DroppedSync++
				continue
			}
		}

		if d, ok := skew[e.Proc]; ok {
			e.Time += d
		}
		out.Append(e)
		if spec.hit(n, saltDuplicate, spec.Duplicate) {
			out.Append(e)
			rep.Duplicated++
		}
	}

	// Reorder: swap timestamps of adjacent same-processor events in the
	// corrupted trace, at most once per event.
	if spec.Reorder > 0 {
		out.Sort()
		prev := make(map[int]int) // proc -> index of its previous event in out
		lastSwap := make(map[int]int)
		for i := range out.Events {
			p := out.Events[i].Proc
			if j, ok := prev[p]; ok && lastSwap[p] != j+1 &&
				spec.hit(uint64(i), saltReorder, spec.Reorder) &&
				out.Events[j].Time != out.Events[i].Time {
				out.Events[j].Time, out.Events[i].Time = out.Events[i].Time, out.Events[j].Time
				lastSwap[p] = i + 1
				rep.Reordered++
			}
			prev[p] = i
		}
	}

	out.Sort()
	return out, rep
}
