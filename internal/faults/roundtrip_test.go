package faults_test

import (
	"testing"

	"perturb/internal/core"
	"perturb/internal/faults"
	"perturb/internal/instr"
	"perturb/internal/trace"
)

// TestFaultClassRoundTrip: for every fault class alone (and all combined),
// an injected trace makes the full Validate -> Repair -> Analyze round
// trip: the sanitizer restores a Validate-clean trace, repair is
// idempotent, and the degraded analysis produces a finite approximation
// with a confidence summary.
func TestFaultClassRoundTrip(t *testing.T) {
	cal := instr.Exact(instr.Uniform(2), 3, 5, 2, 4)
	cases := []struct {
		name string
		spec faults.Spec
	}{
		{"drop-probe", faults.Spec{Seed: 21, DropProbe: 0.1}},
		{"drop-sync", faults.Spec{Seed: 22, DropSync: 0.1}},
		{"duplicate", faults.Spec{Seed: 23, Duplicate: 0.1}},
		{"reorder", faults.Spec{Seed: 24, Reorder: 0.1}},
		{"clock-skew", faults.Spec{Seed: 25, SkewProc: 1, SkewMag: 30}},
		{"truncate", faults.Spec{Seed: 26, TruncateProc: 1, TruncateFrac: 0.1}},
		{"all", func() faults.Spec {
			s := faults.Uniform(0.05, 27)
			s.SkewProc, s.SkewMag = 0.5, 30
			s.TruncateProc, s.TruncateFrac = 0.5, 0.05
			return s
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := syntheticTrace(120)
			corrupted, rep := faults.Inject(tr, tc.spec)
			if rep.Total() == 0 {
				t.Fatalf("%s injected nothing", tc.name)
			}

			repaired, rrep := trace.Repair(corrupted)
			if err := repaired.Validate(); err != nil {
				t.Fatalf("repaired trace fails Validate: %v\nrepair: %s", err, rrep.Summary())
			}
			again, rrep2 := trace.Repair(repaired)
			if rrep2.Modified() {
				t.Fatalf("repair not idempotent: %s", rrep2.Summary())
			}
			if again.Len() != repaired.Len() {
				t.Fatalf("second repair changed event count: %d -> %d", repaired.Len(), again.Len())
			}

			a, err := core.Analyze(corrupted, cal, core.Options{Repair: true})
			if err != nil {
				t.Fatalf("degraded analysis failed: %v\nfaults: %v\nrepair: %s", err, rep, rrep.Summary())
			}
			if a.Duration <= 0 {
				t.Fatalf("degraded analysis produced duration %d", a.Duration)
			}
			if a.Repair == nil || a.Confidence == nil {
				t.Fatal("degraded analysis missing repair report or confidence")
			}
			for _, c := range a.Confidence {
				if c.Score < 0 || c.Score > 1 {
					t.Fatalf("proc %d confidence %v out of range", c.Proc, c.Score)
				}
			}
		})
	}
}

// TestFaultFreeAnalyzeByteIdentical: with injection disabled, the whole
// pipeline — inject (no-op), analyze with and without repair — produces
// results byte-identical to analyzing the pristine trace.
func TestFaultFreeAnalyzeByteIdentical(t *testing.T) {
	cal := instr.Exact(instr.Uniform(2), 3, 5, 2, 4)
	tr := syntheticTrace(120)
	out, rep := faults.Inject(tr, faults.Spec{})
	if rep.Total() != 0 || !sameEvents(tr, out) {
		t.Fatal("disabled injection altered the trace")
	}
	want, err := core.EventBased(tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Analyze(out, cal, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != want.Duration || got.Trace.Len() != want.Trace.Len() {
		t.Fatalf("fault-free analysis differs: duration %d vs %d", got.Duration, want.Duration)
	}
	for i := range want.Trace.Events {
		if got.Trace.Events[i] != want.Trace.Events[i] {
			t.Fatalf("fault-free analysis differs at event %d", i)
		}
	}
}
