package instr

import (
	"perturb/internal/trace"
)

// Calibration is the analyst's estimate of the instrumentation overheads
// and synchronization processing costs, as obtained from an in-vitro
// measurement (paper §2: "measures of in vitro trace instrumentation costs
// in an execution environment"). The perturbation analysis consumes a
// Calibration, never the true Overheads: the gap between the two models the
// real-world calibration error and produces the small residual errors seen
// in the paper's approximations.
type Calibration struct {
	Overheads Overheads
	// SNoWait is the await processing cost when no waiting occurs
	// (the paper's s_nowait).
	SNoWait trace.Time
	// SWait is the await processing cost when the await blocked and was
	// resumed by the advance (the paper's s_wait).
	SWait trace.Time
	// AdvanceOp is the processing cost of the advance operation itself.
	AdvanceOp trace.Time
	// Barrier is the per-processor barrier release cost.
	Barrier trace.Time
}

// Exact returns a calibration that reports the true costs with no
// measurement error. Useful for tests that must isolate model error from
// calibration error.
func Exact(o Overheads, sNoWait, sWait, advanceOp, barrier trace.Time) Calibration {
	return Calibration{Overheads: o, SNoWait: sNoWait, SWait: sWait, AdvanceOp: advanceOp, Barrier: barrier}
}

// Perturbed returns a calibration whose values are skewed by a deterministic
// relative error derived from seed, emulating the noise of a real in-vitro
// measurement. The relative error is within ±maxRelErrPerMille/1000 for
// each field independently.
func Perturbed(c Calibration, seed uint64, maxRelErrPerMille int) Calibration {
	if maxRelErrPerMille <= 0 {
		return c
	}
	skew := func(v trace.Time, salt uint64) trace.Time {
		if v == 0 {
			return 0
		}
		x := seed*0x9E3779B97F4A7C15 + salt*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		span := int64(2*maxRelErrPerMille + 1)
		pm := int64(x%uint64(span)) - int64(maxRelErrPerMille) // in [-max, +max]
		return v + trace.Time(int64(v)*pm/1000)
	}
	return Calibration{
		Overheads: Overheads{
			Event:   skew(c.Overheads.Event, 1),
			Advance: skew(c.Overheads.Advance, 2),
			AwaitB:  skew(c.Overheads.AwaitB, 3),
			AwaitE:  skew(c.Overheads.AwaitE, 4),
		},
		SNoWait:   skew(c.SNoWait, 5),
		SWait:     skew(c.SWait, 6),
		AdvanceOp: skew(c.AdvanceOp, 7),
		Barrier:   skew(c.Barrier, 8),
	}
}
