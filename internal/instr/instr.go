// Package instr models trace instrumentation: which statements carry
// probes, what each probe costs, and the synchronization processing
// overheads that the event-based perturbation analysis takes as input
// (the paper's alpha, beta, s_nowait and s_wait, §4.2.3).
//
// The paper distinguishes two cost families:
//
//   - Instrumentation overheads exist only in instrumented runs: the cost
//     of generating and buffering one trace event. In the analysis formulas
//     these appear as alpha (advance probe), beta (awaitB probe) and the
//     generic per-event overhead subtracted by time-based analysis.
//   - Synchronization processing overheads exist in every run: the cost the
//     await operation itself pays, s_nowait when the advance has already
//     been posted and s_wait when the await had to block and is resumed by
//     the advance. These are properties of the machine, not of the probes,
//     and are "empirically determined and input to the perturbation
//     analysis".
package instr

import (
	"fmt"

	"perturb/internal/program"
	"perturb/internal/trace"
)

// Overheads carries the per-event instrumentation costs used both by the
// machine simulator when injecting probes and by the perturbation analyses
// when removing them. All values are non-negative durations.
type Overheads struct {
	// Event is the cost of recording one ordinary (compute, loop begin/
	// end, barrier) trace event.
	Event trace.Time
	// Advance is the cost of recording an advance event (the paper's
	// alpha).
	Advance trace.Time
	// AwaitB is the cost of recording the await-begin event (beta).
	AwaitB trace.Time
	// AwaitE is the cost of recording the await-end event.
	AwaitE trace.Time
}

// ForKind returns the probe overhead charged for an event of the given kind.
func (o Overheads) ForKind(k trace.Kind) trace.Time {
	switch k {
	case trace.KindAdvance:
		return o.Advance
	case trace.KindAwaitB:
		return o.AwaitB
	case trace.KindAwaitE:
		return o.AwaitE
	default:
		return o.Event
	}
}

// Validate reports an error if any overhead is negative.
func (o Overheads) Validate() error {
	if o.Event < 0 || o.Advance < 0 || o.AwaitB < 0 || o.AwaitE < 0 {
		return fmt.Errorf("instr: overheads must be non-negative: %+v", o)
	}
	return nil
}

// Uniform returns Overheads charging the same cost c for every event.
func Uniform(c trace.Time) Overheads {
	return Overheads{Event: c, Advance: c, AwaitB: c, AwaitE: c}
}

// Zero is the no-instrumentation overhead set; simulating with Zero yields
// the actual (unperturbed) execution.
var Zero Overheads

// Plan selects which events of a loop execution are instrumented. The
// paper's experiments use full statement-level instrumentation, optionally
// extended with synchronization instrumentation (the Table 1 vs Table 2
// difference: event-based analysis additionally requires advance and await
// probes).
type Plan struct {
	// Statements enables probes on compute statements (one event per
	// statement execution). When nil, every statement is instrumented
	// ("full instrumentation"); otherwise only ids present and true.
	Statements map[int]bool
	// Sync enables probes on advance and await operations, producing
	// advance, awaitB and awaitE events.
	Sync bool
	// LoopMarkers enables loop begin/end and barrier events.
	LoopMarkers bool
	// Overheads are the per-event probe costs injected during simulation.
	Overheads Overheads
}

// FullPlan returns a plan instrumenting every statement with the given
// overheads; sync instrumentation is enabled iff withSync is true. Loop
// markers are always enabled: the analysis needs loop begin/end fences.
func FullPlan(o Overheads, withSync bool) Plan {
	return Plan{Statements: nil, Sync: withSync, LoopMarkers: true, Overheads: o}
}

// NonePlan returns a plan with no probes at all; simulating under it yields
// the actual execution while still emitting events with zero overhead so
// the ground truth is observable. (The simulator uses it for the reference
// run: an omniscient, non-intrusive observer.)
func NonePlan() Plan {
	return Plan{Statements: nil, Sync: true, LoopMarkers: true, Overheads: Zero}
}

// StmtInstrumented reports whether the plan probes the given statement id.
func (p Plan) StmtInstrumented(id int) bool {
	if p.Statements == nil {
		return true
	}
	return p.Statements[id]
}

// EventCount returns the number of trace events one full execution of the
// loop will generate under this plan.
func (p Plan) EventCount(l *program.Loop) int {
	n := 0
	perIter := 0
	for _, s := range l.Body {
		switch s.Kind {
		case program.Compute:
			if p.StmtInstrumented(s.ID) {
				perIter++
			}
		case program.Await:
			if p.Sync {
				perIter += 2 // awaitB + awaitE
			}
		case program.Lock:
			if p.Sync {
				perIter += 2 // lock-req + lock-acq
			}
		case program.Advance, program.Unlock:
			if p.Sync {
				perIter++
			}
		}
	}
	n += perIter * l.Iters
	for _, s := range l.Head {
		if p.StmtInstrumented(s.ID) {
			n++
		}
	}
	for _, s := range l.Tail {
		if p.StmtInstrumented(s.ID) {
			n++
		}
	}
	if p.LoopMarkers {
		// Loop begin/end only; barrier events are not counted here
		// because the number of barrier participants is a machine
		// property (processor count), not a plan property.
		n += 2
	}
	return n
}
