package instr_test

import (
	"testing"
	"testing/quick"

	"perturb/internal/instr"
	"perturb/internal/program"
	"perturb/internal/trace"
)

func TestOverheadsForKind(t *testing.T) {
	o := instr.Overheads{Event: 1, Advance: 2, AwaitB: 3, AwaitE: 4}
	cases := map[trace.Kind]trace.Time{
		trace.KindCompute:        1,
		trace.KindLoopBegin:      1,
		trace.KindLoopEnd:        1,
		trace.KindBarrierArrive:  1,
		trace.KindBarrierRelease: 1,
		trace.KindAdvance:        2,
		trace.KindAwaitB:         3,
		trace.KindAwaitE:         4,
	}
	for k, want := range cases {
		if got := o.ForKind(k); got != want {
			t.Errorf("ForKind(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestOverheadsValidate(t *testing.T) {
	if err := instr.Uniform(5).Validate(); err != nil {
		t.Errorf("uniform overheads should validate: %v", err)
	}
	if err := (instr.Overheads{Event: -1}).Validate(); err == nil {
		t.Error("negative overhead should fail validation")
	}
	if err := instr.Zero.Validate(); err != nil {
		t.Errorf("zero overheads should validate: %v", err)
	}
}

func TestUniform(t *testing.T) {
	o := instr.Uniform(7)
	if o.Event != 7 || o.Advance != 7 || o.AwaitB != 7 || o.AwaitE != 7 {
		t.Errorf("Uniform(7) = %+v", o)
	}
}

func TestPlanStmtInstrumented(t *testing.T) {
	full := instr.FullPlan(instr.Uniform(1), true)
	if !full.StmtInstrumented(0) || !full.StmtInstrumented(99) {
		t.Error("full plan should instrument every statement")
	}
	partial := instr.Plan{Statements: map[int]bool{3: true}}
	if !partial.StmtInstrumented(3) || partial.StmtInstrumented(4) {
		t.Error("partial plan selection wrong")
	}
}

func TestNonePlanIsZeroCostObserver(t *testing.T) {
	p := instr.NonePlan()
	if p.Overheads != instr.Zero {
		t.Error("NonePlan should have zero overheads")
	}
	if !p.Sync || !p.LoopMarkers {
		t.Error("NonePlan should still observe sync and markers")
	}
}

func testLoop() *program.Loop {
	return program.NewBuilder("l", 0, program.DOACROSS, 10).
		Head("h", 1).
		Compute("a", 1).
		CriticalBegin(0).
		Compute("b", 1).
		CriticalEnd(0).
		Tail("t", 1).
		Loop()
}

func TestEventCount(t *testing.T) {
	l := testLoop()
	// Full with sync: per iter 2 compute + awaitB + awaitE + advance = 5;
	// head + tail = 2; markers = 2.
	if got, want := instr.FullPlan(instr.Uniform(1), true).EventCount(l), 10*5+2+2; got != want {
		t.Errorf("EventCount(sync) = %d, want %d", got, want)
	}
	// Without sync: per iter 2 compute.
	if got, want := instr.FullPlan(instr.Uniform(1), false).EventCount(l), 10*2+2+2; got != want {
		t.Errorf("EventCount(nosync) = %d, want %d", got, want)
	}
	// Partial: only statement 1 (first body compute).
	p := instr.Plan{Statements: map[int]bool{1: true}, LoopMarkers: true}
	if got, want := p.EventCount(l), 10+2; got != want {
		t.Errorf("EventCount(partial) = %d, want %d", got, want)
	}
}

func TestExactCalibration(t *testing.T) {
	o := instr.Uniform(5)
	c := instr.Exact(o, 1, 2, 3, 4)
	if c.Overheads != o || c.SNoWait != 1 || c.SWait != 2 || c.AdvanceOp != 3 || c.Barrier != 4 {
		t.Errorf("Exact = %+v", c)
	}
}

func TestPerturbedCalibrationBounds(t *testing.T) {
	base := instr.Exact(instr.Uniform(10000), 1000, 2000, 3000, 4000)
	f := func(seed uint64) bool {
		p := instr.Perturbed(base, seed, 50) // +/-5%
		within := func(got, want trace.Time) bool {
			lo := want - want*50/1000
			hi := want + want*50/1000
			return got >= lo && got <= hi
		}
		return within(p.Overheads.Event, 10000) &&
			within(p.Overheads.Advance, 10000) &&
			within(p.SNoWait, 1000) &&
			within(p.SWait, 2000) &&
			within(p.AdvanceOp, 3000) &&
			within(p.Barrier, 4000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPerturbedCalibrationDeterministicAndZeroSafe(t *testing.T) {
	base := instr.Exact(instr.Uniform(10000), 1000, 2000, 3000, 4000)
	a := instr.Perturbed(base, 7, 40)
	b := instr.Perturbed(base, 7, 40)
	if a != b {
		t.Error("Perturbed must be deterministic per seed")
	}
	if c := instr.Perturbed(base, 7, 0); c != base {
		t.Error("zero noise should return the base calibration")
	}
	zero := instr.Calibration{}
	if p := instr.Perturbed(zero, 3, 100); p != zero {
		t.Error("zero-valued constants must stay zero under perturbation")
	}
}
