// Package program defines the statement-level program model executed by the
// machine simulator (package machine) and interpreted by the perturbation
// analyses (package core).
//
// Following the paper, a program is a sequence of statements, and an event
// is the execution of a statement (§2). The unit of concurrent execution is
// a loop: sequential, vector, DOALL (fully independent iterations), or
// DOACROSS (iterations carry constant-distance data dependencies enforced
// with advance/await synchronization, §4.3). A DOACROSS loop body may
// contain an await ... advance region: the statements between them form the
// critical region serialized across iterations at the dependence distance.
package program

import (
	"fmt"

	"perturb/internal/trace"
)

// Mode describes how a loop's iterations execute.
type Mode uint8

const (
	// Sequential runs all iterations on one processor.
	Sequential Mode = iota
	// Vector runs iterations on one processor with vector-unit costs
	// (per-statement costs are divided by the machine's vector speedup).
	Vector
	// DOALL runs iterations concurrently with no cross-iteration
	// dependencies; only the end-of-loop barrier synchronizes.
	DOALL
	// DOACROSS runs iterations concurrently under advance/await
	// synchronization with a constant dependence distance.
	DOACROSS
)

var modeNames = [...]string{
	Sequential: "sequential",
	Vector:     "vector",
	DOALL:      "doall",
	DOACROSS:   "doacross",
}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Schedule selects how concurrent loop iterations are assigned to
// processors. It lives in the program model because it is an attribute of
// how the compiled loop executes, consumed both by the machine simulator
// and by the liberal (reschedule-aware) perturbation analysis.
type Schedule uint8

const (
	// Interleaved assigns iteration i to processor i mod P (the Alliant
	// prescheduled discipline for concurrent loops).
	Interleaved Schedule = iota
	// Blocked assigns contiguous chunks of ceil(N/P) iterations per
	// processor.
	Blocked
	// Dynamic self-schedules: each next iteration goes to the processor
	// that becomes available first (ties to the lowest id).
	Dynamic
)

var scheduleNames = [...]string{Interleaved: "interleaved", Blocked: "blocked", Dynamic: "dynamic"}

func (s Schedule) String() string {
	if int(s) < len(scheduleNames) {
		return scheduleNames[s]
	}
	return fmt.Sprintf("schedule(%d)", uint8(s))
}

// NumSchedules is the number of defined scheduling disciplines.
const NumSchedules = 3

// StmtKind classifies a statement in a loop body.
type StmtKind uint8

const (
	// Compute is an ordinary statement with a fixed base cost.
	Compute StmtKind = iota
	// Await blocks until the advance for (iteration - loop.Distance) has
	// been posted on the statement's synchronization variable.
	Await
	// Advance posts the current iteration on the statement's
	// synchronization variable, releasing dependent awaits.
	Advance
	// Lock acquires the mutual-exclusion lock named by Var, blocking
	// while another iteration holds it. Unlike Await, the acquisition
	// order is decided at run time (FIFO by request time on the
	// simulated machine).
	Lock
	// Unlock releases the lock named by Var.
	Unlock
)

var stmtKindNames = [...]string{
	Compute: "compute", Await: "await", Advance: "advance",
	Lock: "lock", Unlock: "unlock",
}

func (k StmtKind) String() string {
	if int(k) < len(stmtKindNames) {
		return stmtKindNames[k]
	}
	return fmt.Sprintf("stmtkind(%d)", uint8(k))
}

// Stmt is one statement of a loop body (or of the sequential head/tail).
type Stmt struct {
	ID    int    // unique statement id within the program
	Label string // human-readable label, e.g. "q += z[k]*x[k]"
	Kind  StmtKind
	Cost  trace.Time // uninstrumented execution cost (Compute statements)
	Var   int        // synchronization variable id (Await/Advance); trace.NoVar otherwise

	// Jitter, when non-zero, adds a deterministic pseudo-random cost in
	// [0, Jitter) that depends on (statement id, iteration). It models
	// data-dependent execution time (for example the conditional
	// computation of Livermore loop 17) and is identical in the actual
	// and the measured run, so it perturbs load balance but not the
	// ground-truth comparison.
	Jitter trace.Time

	// Vectorizable marks statements whose cost shrinks by the machine's
	// vector speedup in Vector mode (and in the vector-inner portion of
	// concurrent-outer-vector-inner execution).
	Vectorizable bool
}

// Loop is a single loop nest in the program model. The Livermore kernels in
// package loops are each described by one Loop.
type Loop struct {
	Name   string // e.g. "LL3 inner product"
	Number int    // Livermore kernel number, 0 if not an LFK
	Mode   Mode
	Iters  int // number of (outer, concurrent) iterations

	// Body is executed once per iteration.
	Body []Stmt

	// Distance is the constant data-dependence distance for DOACROSS
	// loops: the await of iteration i waits for the advance of iteration
	// i-Distance. Must be >= 1 for DOACROSS loops.
	Distance int

	// Head and Tail are sequential statements executed on processor 0
	// before and after the loop (the paper's "sequential portions before
	// and after the parallel DOACROSS loop", §5.3).
	Head []Stmt
	Tail []Stmt
}

// NumStmts returns the total number of distinct statements in the loop.
func (l *Loop) NumStmts() int { return len(l.Head) + len(l.Body) + len(l.Tail) }

// Stmts returns all statements (head, body, tail) in program order.
func (l *Loop) Stmts() []Stmt {
	out := make([]Stmt, 0, l.NumStmts())
	out = append(out, l.Head...)
	out = append(out, l.Body...)
	out = append(out, l.Tail...)
	return out
}

// StmtByID returns the statement with the given id and true, or a zero
// statement and false if no such statement exists.
func (l *Loop) StmtByID(id int) (Stmt, bool) {
	for _, s := range l.Stmts() {
		if s.ID == id {
			return s, true
		}
	}
	return Stmt{}, false
}

// SyncVars returns the set of advance/await synchronization variable ids
// referenced by the loop body, in first-use order.
func (l *Loop) SyncVars() []int { return l.varsOf(Await, Advance) }

// LockVars returns the set of lock ids referenced by the loop body, in
// first-use order.
func (l *Loop) LockVars() []int { return l.varsOf(Lock, Unlock) }

func (l *Loop) varsOf(a, b StmtKind) []int {
	seen := make(map[int]bool)
	var vars []int
	for _, s := range l.Body {
		if s.Kind == a || s.Kind == b {
			if !seen[s.Var] {
				seen[s.Var] = true
				vars = append(vars, s.Var)
			}
		}
	}
	return vars
}

// Validate checks structural invariants of the loop model:
//
//   - statement ids are unique and non-negative;
//   - Await/Advance statements appear only in DOACROSS bodies, reference a
//     valid synchronization variable, and each await precedes a matching
//     advance on the same variable (the critical region is well formed);
//   - Lock/Unlock statements appear only in concurrent (DOALL or DOACROSS)
//     bodies, pair up per lock id, and do not nest on one lock;
//   - DOACROSS loops have Distance >= 1; other modes have no sync
//     statements;
//   - Iters >= 1 and costs are non-negative.
func (l *Loop) Validate() error {
	if l.Iters < 1 {
		return fmt.Errorf("program: loop %q: Iters must be >= 1, got %d", l.Name, l.Iters)
	}
	if l.Mode == DOACROSS && l.Distance < 1 {
		return fmt.Errorf("program: loop %q: DOACROSS requires Distance >= 1, got %d", l.Name, l.Distance)
	}
	ids := make(map[int]bool)
	check := func(s Stmt, where string, allowAdv, allowLock bool) error {
		if s.ID < 0 {
			return fmt.Errorf("program: loop %q: %s statement %q has negative id %d", l.Name, where, s.Label, s.ID)
		}
		if ids[s.ID] {
			return fmt.Errorf("program: loop %q: duplicate statement id %d (%q)", l.Name, s.ID, s.Label)
		}
		ids[s.ID] = true
		if s.Cost < 0 || s.Jitter < 0 {
			return fmt.Errorf("program: loop %q: statement %d (%q) has negative cost", l.Name, s.ID, s.Label)
		}
		switch s.Kind {
		case Compute:
		case Await, Advance:
			if !allowAdv {
				return fmt.Errorf("program: loop %q: %s statement %d is %v; advance/await belongs in DOACROSS bodies only",
					l.Name, where, s.ID, s.Kind)
			}
		case Lock, Unlock:
			if !allowLock {
				return fmt.Errorf("program: loop %q: %s statement %d is %v; locks belong in concurrent bodies only",
					l.Name, where, s.ID, s.Kind)
			}
		default:
			return fmt.Errorf("program: loop %q: statement %d has unknown kind %v", l.Name, s.ID, s.Kind)
		}
		if s.Kind != Compute && s.Var < 0 {
			return fmt.Errorf("program: loop %q: sync statement %d lacks a variable id", l.Name, s.ID)
		}
		return nil
	}
	for _, s := range l.Head {
		if err := check(s, "head", false, false); err != nil {
			return err
		}
	}
	allowAdv := l.Mode == DOACROSS
	allowLock := l.Mode == DOACROSS || l.Mode == DOALL
	openAwait := make(map[int]bool) // sync var -> await seen, advance pending
	openLock := make(map[int]bool)  // lock id -> held
	for _, s := range l.Body {
		if err := check(s, "body", allowAdv, allowLock); err != nil {
			return err
		}
		switch s.Kind {
		case Await:
			if openAwait[s.Var] {
				return fmt.Errorf("program: loop %q: nested await on variable %d", l.Name, s.Var)
			}
			openAwait[s.Var] = true
		case Advance:
			if !openAwait[s.Var] {
				return fmt.Errorf("program: loop %q: advance on variable %d without preceding await", l.Name, s.Var)
			}
			openAwait[s.Var] = false
		case Lock:
			if openLock[s.Var] {
				return fmt.Errorf("program: loop %q: nested lock on %d", l.Name, s.Var)
			}
			openLock[s.Var] = true
		case Unlock:
			if !openLock[s.Var] {
				return fmt.Errorf("program: loop %q: unlock of %d without holding it", l.Name, s.Var)
			}
			openLock[s.Var] = false
		}
	}
	for v, pending := range openAwait {
		if pending {
			return fmt.Errorf("program: loop %q: await on variable %d has no matching advance", l.Name, v)
		}
	}
	for v, held := range openLock {
		if held {
			return fmt.Errorf("program: loop %q: lock %d is never released", l.Name, v)
		}
	}
	for _, s := range l.Tail {
		if err := check(s, "tail", false, false); err != nil {
			return err
		}
	}
	return nil
}

// JitterCost returns the deterministic pseudo-random extra cost for
// executing statement s in iteration iter. It uses a SplitMix64-style hash
// so the value is reproducible and uncorrelated across (stmt, iter) pairs.
func JitterCost(s Stmt, iter int) trace.Time {
	if s.Jitter <= 0 {
		return 0
	}
	x := uint64(s.ID)*0x9E3779B97F4A7C15 + uint64(iter)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return trace.Time(x % uint64(s.Jitter))
}

// Cost returns the full uninstrumented cost of executing statement s in
// iteration iter: base cost plus jitter.
func Cost(s Stmt, iter int) trace.Time { return s.Cost + JitterCost(s, iter) }
