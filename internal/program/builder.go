package program

import (
	"perturb/internal/trace"
)

// Builder constructs Loop values with automatically assigned statement ids.
// It is the convenient way to define loop models:
//
//	b := program.NewBuilder("LL3 inner product", 3, program.DOACROSS, 512)
//	b.Head("init", 2*us)
//	b.Compute("strip product", 4*us)
//	b.CriticalBegin(0)            // await(A, i-1)
//	b.Compute("q += partial", us) // critical region
//	b.CriticalEnd(0)              // advance(A, i)
//	loop := b.Loop()
type Builder struct {
	loop    Loop
	nextID  int
	section int // 0 = head, 1 = body, 2 = tail
}

// NewBuilder returns a builder for a loop with the given name, Livermore
// kernel number (0 if not an LFK), execution mode and iteration count.
// DOACROSS loops default to dependence distance 1; override with Distance.
func NewBuilder(name string, number int, mode Mode, iters int) *Builder {
	b := &Builder{loop: Loop{Name: name, Number: number, Mode: mode, Iters: iters}}
	if mode == DOACROSS {
		b.loop.Distance = 1
	}
	return b
}

// Distance sets the dependence distance of a DOACROSS loop.
func (b *Builder) Distance(d int) *Builder {
	b.loop.Distance = d
	return b
}

func (b *Builder) add(s Stmt) *Builder {
	s.ID = b.nextID
	b.nextID++
	switch b.section {
	case 0:
		b.loop.Head = append(b.loop.Head, s)
	case 1:
		b.loop.Body = append(b.loop.Body, s)
	default:
		b.loop.Tail = append(b.loop.Tail, s)
	}
	return b
}

// Head appends a sequential pre-loop statement. Head statements must be
// added before any body statement.
func (b *Builder) Head(label string, cost trace.Time) *Builder {
	b.section = 0
	return b.add(Stmt{Label: label, Kind: Compute, Cost: cost, Var: trace.NoVar})
}

// Compute appends an ordinary body statement.
func (b *Builder) Compute(label string, cost trace.Time) *Builder {
	b.section = 1
	return b.add(Stmt{Label: label, Kind: Compute, Cost: cost, Var: trace.NoVar})
}

// ComputeJitter appends a body statement whose cost varies deterministically
// per iteration in [cost, cost+jitter).
func (b *Builder) ComputeJitter(label string, cost, jitter trace.Time) *Builder {
	b.section = 1
	return b.add(Stmt{Label: label, Kind: Compute, Cost: cost, Jitter: jitter, Var: trace.NoVar})
}

// Vector appends a vectorizable body statement.
func (b *Builder) Vector(label string, cost trace.Time) *Builder {
	b.section = 1
	return b.add(Stmt{Label: label, Kind: Compute, Cost: cost, Var: trace.NoVar, Vectorizable: true})
}

// AwaitStmt appends an await on the given synchronization variable.
func (b *Builder) AwaitStmt(v int) *Builder {
	b.section = 1
	return b.add(Stmt{Label: "await", Kind: Await, Var: v})
}

// AdvanceStmt appends an advance on the given synchronization variable.
func (b *Builder) AdvanceStmt(v int) *Builder {
	b.section = 1
	return b.add(Stmt{Label: "advance", Kind: Advance, Var: v})
}

// CriticalBegin is a readable alias for AwaitStmt: it opens the critical
// region serialized across iterations.
func (b *Builder) CriticalBegin(v int) *Builder { return b.AwaitStmt(v) }

// CriticalEnd is a readable alias for AdvanceStmt: it closes the critical
// region opened by CriticalBegin.
func (b *Builder) CriticalEnd(v int) *Builder { return b.AdvanceStmt(v) }

// LockStmt appends an acquisition of the given lock: a mutual-exclusion
// critical section whose entry order is decided at run time, unlike the
// iteration-ordered CriticalBegin.
func (b *Builder) LockStmt(lock int) *Builder {
	b.section = 1
	return b.add(Stmt{Label: "lock", Kind: Lock, Var: lock})
}

// UnlockStmt appends the release of the given lock.
func (b *Builder) UnlockStmt(lock int) *Builder {
	b.section = 1
	return b.add(Stmt{Label: "unlock", Kind: Unlock, Var: lock})
}

// Tail appends a sequential post-loop statement.
func (b *Builder) Tail(label string, cost trace.Time) *Builder {
	b.section = 2
	return b.add(Stmt{Label: label, Kind: Compute, Cost: cost, Var: trace.NoVar})
}

// Loop validates and returns the constructed loop. It panics on a malformed
// loop; builders are used to define static workloads, so a structural error
// is a programming bug.
func (b *Builder) Loop() *Loop {
	l := b.loop
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return &l
}
