package program_test

import (
	"strings"
	"testing"
	"testing/quick"

	"perturb/internal/program"
	"perturb/internal/trace"
)

func validLoop() *program.Loop {
	return program.NewBuilder("ok", 3, program.DOACROSS, 10).
		Head("h", 100).
		Compute("a", 200).
		CriticalBegin(0).
		Compute("b", 300).
		CriticalEnd(0).
		Tail("t", 100).
		Loop()
}

func TestValidLoopValidates(t *testing.T) {
	if err := validLoop().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderAssignsSequentialIDs(t *testing.T) {
	l := validLoop()
	seen := map[int]bool{}
	for i, s := range l.Stmts() {
		if s.ID != i {
			t.Errorf("statement %d has id %d", i, s.ID)
		}
		if seen[s.ID] {
			t.Errorf("duplicate id %d", s.ID)
		}
		seen[s.ID] = true
	}
	if got := l.NumStmts(); got != 6 {
		t.Errorf("NumStmts = %d, want 6", got)
	}
}

func TestStmtByID(t *testing.T) {
	l := validLoop()
	s, ok := l.StmtByID(2)
	if !ok || s.Kind != program.Await {
		t.Errorf("StmtByID(2) = %v, %v; want the await", s, ok)
	}
	if _, ok := l.StmtByID(99); ok {
		t.Error("StmtByID(99) should not exist")
	}
}

func TestSyncVars(t *testing.T) {
	l := validLoop()
	vars := l.SyncVars()
	if len(vars) != 1 || vars[0] != 0 {
		t.Errorf("SyncVars = %v, want [0]", vars)
	}
	seq := program.NewBuilder("s", 0, program.Sequential, 1).Compute("x", 1).Loop()
	if len(seq.SyncVars()) != 0 {
		t.Error("sequential loop should have no sync vars")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		loop program.Loop
		want string
	}{
		{
			"zero iters",
			program.Loop{Name: "x", Iters: 0},
			"Iters",
		},
		{
			"doacross distance",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOACROSS, Distance: 0},
			"Distance",
		},
		{
			"duplicate ids",
			program.Loop{Name: "x", Iters: 1, Body: []program.Stmt{
				{ID: 0, Kind: program.Compute, Var: trace.NoVar},
				{ID: 0, Kind: program.Compute, Var: trace.NoVar},
			}},
			"duplicate",
		},
		{
			"negative id",
			program.Loop{Name: "x", Iters: 1, Body: []program.Stmt{
				{ID: -1, Kind: program.Compute, Var: trace.NoVar},
			}},
			"negative id",
		},
		{
			"negative cost",
			program.Loop{Name: "x", Iters: 1, Body: []program.Stmt{
				{ID: 0, Kind: program.Compute, Cost: -5, Var: trace.NoVar},
			}},
			"negative cost",
		},
		{
			"sync in sequential",
			program.Loop{Name: "x", Iters: 1, Mode: program.Sequential, Body: []program.Stmt{
				{ID: 0, Kind: program.Await, Var: 0},
			}},
			"DOACROSS",
		},
		{
			"sync in head",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOACROSS, Distance: 1,
				Head: []program.Stmt{{ID: 0, Kind: program.Advance, Var: 0}}},
			"head",
		},
		{
			"advance without await",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOACROSS, Distance: 1, Body: []program.Stmt{
				{ID: 0, Kind: program.Advance, Var: 0},
			}},
			"without preceding await",
		},
		{
			"await without advance",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOACROSS, Distance: 1, Body: []program.Stmt{
				{ID: 0, Kind: program.Await, Var: 0},
			}},
			"no matching advance",
		},
		{
			"nested await",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOACROSS, Distance: 1, Body: []program.Stmt{
				{ID: 0, Kind: program.Await, Var: 0},
				{ID: 1, Kind: program.Await, Var: 0},
			}},
			"nested await",
		},
		{
			"sync var missing",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOACROSS, Distance: 1, Body: []program.Stmt{
				{ID: 0, Kind: program.Await, Var: -1},
			}},
			"lacks a variable",
		},
	}
	for _, c := range cases {
		err := c.loop.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestBuilderPanicsOnInvalidLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for await without advance")
		}
	}()
	program.NewBuilder("bad", 0, program.DOACROSS, 4).AwaitStmt(0).Loop()
}

func TestJitterCostProperties(t *testing.T) {
	// Zero jitter yields zero extra cost.
	s := program.Stmt{ID: 1, Cost: 100}
	if program.JitterCost(s, 5) != 0 {
		t.Error("zero jitter should cost nothing")
	}
	// Jittered cost lies in [0, Jitter) and is deterministic.
	s.Jitter = 700
	f := func(iter uint16) bool {
		j := program.JitterCost(s, int(iter))
		if j < 0 || j >= s.Jitter {
			return false
		}
		return j == program.JitterCost(s, int(iter))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Different statements get different jitter streams.
	s2 := s
	s2.ID = 2
	same := 0
	for i := 0; i < 50; i++ {
		if program.JitterCost(s, i) == program.JitterCost(s2, i) {
			same++
		}
	}
	if same == 50 {
		t.Error("jitter streams should differ between statements")
	}
	if got := program.Cost(s, 3); got != s.Cost+program.JitterCost(s, 3) {
		t.Errorf("Cost = %d, want base+jitter", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if program.Sequential.String() != "sequential" || program.DOACROSS.String() != "doacross" {
		t.Error("mode strings wrong")
	}
	if program.Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
	if program.Interleaved.String() != "interleaved" || program.Dynamic.String() != "dynamic" {
		t.Error("schedule strings wrong")
	}
	if program.Schedule(9).String() != "schedule(9)" {
		t.Error("unknown schedule string wrong")
	}
	if program.Compute.String() != "compute" || program.Await.String() != "await" || program.Advance.String() != "advance" {
		t.Error("stmt kind strings wrong")
	}
	if program.StmtKind(9).String() != "stmtkind(9)" {
		t.Error("unknown stmt kind string wrong")
	}
}

func TestBuilderDistanceAndVector(t *testing.T) {
	l := program.NewBuilder("d", 0, program.DOACROSS, 4).
		Distance(3).
		Vector("v", 800).
		CriticalBegin(1).
		Compute("c", 100).
		CriticalEnd(1).
		Loop()
	if l.Distance != 3 {
		t.Errorf("Distance = %d, want 3", l.Distance)
	}
	if !l.Body[0].Vectorizable {
		t.Error("Vector statement should be vectorizable")
	}
}

func TestLockBuilderAndVars(t *testing.T) {
	l := program.NewBuilder("locky", 0, program.DOALL, 4).
		ComputeJitter("jittered", 100, 50).
		LockStmt(3).
		Compute("c", 10).
		UnlockStmt(3).
		Loop()
	if got := l.LockVars(); len(got) != 1 || got[0] != 3 {
		t.Errorf("LockVars = %v, want [3]", got)
	}
	if l.Body[0].Jitter != 50 {
		t.Errorf("jitter = %d, want 50", l.Body[0].Jitter)
	}
}

func TestLockValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		loop program.Loop
		want string
	}{
		{
			"lock in sequential",
			program.Loop{Name: "x", Iters: 1, Mode: program.Sequential, Body: []program.Stmt{
				{ID: 0, Kind: program.Lock, Var: 0},
			}},
			"concurrent bodies",
		},
		{
			"nested lock",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOALL, Body: []program.Stmt{
				{ID: 0, Kind: program.Lock, Var: 0},
				{ID: 1, Kind: program.Lock, Var: 0},
			}},
			"nested lock",
		},
		{
			"unlock without lock",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOALL, Body: []program.Stmt{
				{ID: 0, Kind: program.Unlock, Var: 0},
			}},
			"without holding",
		},
		{
			"lock never released",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOALL, Body: []program.Stmt{
				{ID: 0, Kind: program.Lock, Var: 0},
			}},
			"never released",
		},
		{
			"unknown stmt kind",
			program.Loop{Name: "x", Iters: 1, Mode: program.DOALL, Body: []program.Stmt{
				{ID: 0, Kind: program.StmtKind(9), Var: 0},
			}},
			"unknown kind",
		},
	}
	for _, c := range cases {
		err := c.loop.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	good := program.NewProgram("p",
		program.NewBuilder("a", 0, program.Sequential, 1).Compute("x", 1).Loop(),
		program.NewBuilder("b", 0, program.DOALL, 2).Compute("y", 1).Loop(),
	)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.NumStmts(); got != 2 {
		t.Errorf("NumStmts = %d, want 2", got)
	}
	if err := program.NewProgram("empty").Validate(); err == nil {
		t.Error("empty program should fail")
	}
	if err := program.NewProgram("nilphase", nil).Validate(); err == nil {
		t.Error("nil phase should fail")
	}
	bad := program.NewProgram("badphase", &program.Loop{Name: "x", Iters: 0})
	if err := bad.Validate(); err == nil {
		t.Error("invalid phase should fail")
	}
}
