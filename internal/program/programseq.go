package program

import "fmt"

// Program is a sequence of loop phases executed back to back, the shape of
// real scientific codes (and of the Livermore benchmark itself): each
// phase forks, iterates, joins at its barrier, and hands off through
// sequential glue to the next phase. Perturbation analysis handles the
// multiple fork/join fences via the loop-begin and barrier events each
// phase emits.
type Program struct {
	Name   string
	Phases []*Loop
}

// NewProgram assembles a program from loop phases.
func NewProgram(name string, phases ...*Loop) *Program {
	return &Program{Name: name, Phases: phases}
}

// Validate checks every phase.
func (p *Program) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("program: program %q has no phases", p.Name)
	}
	for i, l := range p.Phases {
		if l == nil {
			return fmt.Errorf("program: program %q: phase %d is nil", p.Name, i)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("program: program %q phase %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// NumStmts returns the total statement count across phases.
func (p *Program) NumStmts() int {
	n := 0
	for _, l := range p.Phases {
		n += l.NumStmts()
	}
	return n
}
