package perturb_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"perturb"
)

// cancelTrace simulates an instrumented multi-phase program of Livermore
// loop 3 runs, producing a trace large enough (>100k events) that the
// analysis takes long enough for a mid-flight deadline to land inside the
// engine rather than before it starts.
func cancelTrace(t testing.TB) *perturb.Trace {
	t.Helper()
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		t.Fatal(err)
	}
	phases := make([]*perturb.Loop, 8)
	for i := range phases {
		phases[i] = loop
	}
	prog := perturb.NewProgram("cancel-soak", phases...)
	cfg := perturb.Alliant()
	res, err := perturb.SimulateProgram(prog, perturb.FullInstrumentation(perturb.PaperOverheads(), true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func cancelCal(cfg perturb.MachineConfig) perturb.Calibration {
	return perturb.ExactCalibration(perturb.PaperOverheads(), cfg)
}

// analysisVariants covers both execution engines: the sequential resolver
// and the sharded parallel scheduler.
func analysisVariants() map[string]perturb.AnalyzeOptions {
	return map[string]perturb.AnalyzeOptions{
		"sequential": {},
		"parallel":   {Workers: 4},
	}
}

func TestAnalyzeContextAlreadyCanceled(t *testing.T) {
	tr := cancelTrace(t)
	cal := cancelCal(perturb.Alliant())
	for name, opts := range analysisVariants() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			approx, err := perturb.AnalyzeContext(ctx, tr, cal, opts)
			if !errors.Is(err, perturb.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v does not unwrap to context.Canceled", err)
			}
			if approx != nil {
				t.Fatal("canceled analysis returned a partial Approximation")
			}
		})
	}
}

// countdownCtx is a context whose Err() stays nil for a fixed number of
// polls and then reports cause forever; the Done channel closes at the
// last nil poll. Real deadline timers on a loaded single-CPU machine can
// fire tens of milliseconds late — after a whole analysis has finished —
// so mid-flight expiry is made deterministic instead: expiring on the
// K-th cooperative check lands the cancellation inside the engine no
// matter how fast the machine is.
type countdownCtx struct {
	mu    sync.Mutex
	left  int
	cause error
	done  chan struct{}
}

func newCountdownCtx(polls int, cause error) *countdownCtx {
	return &countdownCtx{left: polls, cause: cause, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(key any) any           { return nil }

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left > 0 {
		c.left--
		if c.left == 0 {
			close(c.done)
		}
		return nil
	}
	return c.cause
}

// expireMidAnalysis runs the analysis under countdown contexts expiring at
// successively later cooperative checks and returns the first error
// observed, skipping expiry points the engine never reaches. polls=1 is
// excluded: that expires on the entry check, which the already-canceled
// tests cover.
func expireMidAnalysis(t *testing.T, tr *perturb.Trace, cal perturb.Calibration, opts perturb.AnalyzeOptions, cause error) error {
	t.Helper()
	for polls := 2; polls <= 16; polls++ {
		ctx := newCountdownCtx(polls, cause)
		approx, err := perturb.AnalyzeContext(ctx, tr, cal, opts)
		if err == nil {
			continue // analysis finished before the ctx expired
		}
		if approx != nil {
			t.Fatal("expired analysis returned a partial Approximation")
		}
		return err
	}
	t.Fatal("analysis never observed a context that expired mid-flight")
	return nil
}

func TestAnalyzeContextDeadlineMidAnalysis(t *testing.T) {
	tr := cancelTrace(t)
	cal := cancelCal(perturb.Alliant())
	for name, opts := range analysisVariants() {
		t.Run(name, func(t *testing.T) {
			err := expireMidAnalysis(t, tr, cal, opts, context.DeadlineExceeded)
			if !errors.Is(err, perturb.ErrDeadlineExceeded) {
				t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
			}
		})
	}
}

func TestAnalyzeContextCancelMidAnalysis(t *testing.T) {
	tr := cancelTrace(t)
	cal := cancelCal(perturb.Alliant())
	for name, opts := range analysisVariants() {
		t.Run(name, func(t *testing.T) {
			err := expireMidAnalysis(t, tr, cal, opts, context.Canceled)
			if !errors.Is(err, perturb.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v does not unwrap to context.Canceled", err)
			}
		})
	}
}

// TestAnalyzeContextNoGoroutineLeak hammers the parallel engine with
// mid-flight cancellations and checks the scheduler's workers all exit:
// a leaked worker would show up as monotone goroutine growth.
func TestAnalyzeContextNoGoroutineLeak(t *testing.T) {
	tr := cancelTrace(t)
	cal := cancelCal(perturb.Alliant())
	opts := perturb.AnalyzeOptions{Workers: 4}

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		// Cycle the expiry point through every cooperative check the
		// pipeline reaches, so workers are cancelled at varying stages:
		// parked, mid-shard and between passes.
		perturb.AnalyzeContext(newCountdownCtx(2+i%8, context.Canceled), tr, cal, opts)
	}
	// Workers exit after the scheduler observes cancellation; give the
	// runtime a moment to reap them before counting.
	var after int
	for wait := 0; wait < 100; wait++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 20 canceled parallel analyses", before, after)
}

// TestSimulateAndReadTraceContext exercises the other two cancellable
// entry points with already-expired contexts.
func TestSimulateAndReadTraceContextCanceled(t *testing.T) {
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := perturb.SimulateContext(ctx, loop, perturb.NoInstrumentation(), perturb.Alliant()); !errors.Is(err, perturb.ErrCanceled) {
		t.Errorf("SimulateContext err = %v, want ErrCanceled", err)
	}
}
