package perturb_test

import (
	"bytes"
	"testing"
	"time"

	"perturb"
	"perturb/internal/obs"
)

// Effectiveness and performance floors for the columnar codec on the
// million-event backward-wave workload (ISSUE 6 acceptance criteria):
// narrow windowed slices must decode a small fraction of the blocks, the
// columnar encoding must be an order of magnitude smaller than the row
// binary codec, and decoding it must be several times faster.

// TestColumnarBlockSkipEffectiveness asserts that a narrow time-window
// slice of the million-event trace decodes fewer than 15% of the blocks,
// both through the slice report and through the codec's obs counters
// (trace.read.blocks / trace.read.blocks_skipped), which cover seek-style
// readers that the row-stream counters never see.
func TestColumnarBlockSkipEffectiveness(t *testing.T) {
	tr, _ := bigWorkload()
	var buf bytes.Buffer
	if err := tr.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}

	dur := tr.End() - tr.Start()
	q := perturb.SliceQuery{
		HasWindow: true,
		From:      tr.Start() + dur/20,
		To:        tr.Start() + dur/10,
	}

	obs.Reset()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	sl, rep, err := perturb.SliceTrace(bytes.NewReader(buf.Bytes()), q)
	if err != nil {
		t.Fatal(err)
	}
	obs.SetEnabled(false)

	if sl.Len() == 0 || rep.Selected == 0 {
		t.Fatalf("window query selected nothing (kept %d)", sl.Len())
	}
	total := rep.BlocksRead + rep.BlocksSkipped
	if total == 0 {
		t.Fatal("no blocks seen; columnar path not taken")
	}
	if frac := float64(rep.BlocksRead) / float64(total); frac >= 0.15 {
		t.Errorf("narrow window decoded %d of %d blocks (%.1f%%), want < 15%%",
			rep.BlocksRead, total, 100*frac)
	}

	counters := map[string]int64{}
	for _, c := range obs.Snapshot().Counters {
		counters[c.Name] = c.Value
	}
	if got := counters["trace.read.blocks"]; got != rep.BlocksRead {
		t.Errorf("trace.read.blocks = %d, want %d (slice report)", got, rep.BlocksRead)
	}
	if got := counters["trace.read.blocks_skipped"]; got != rep.BlocksSkipped {
		t.Errorf("trace.read.blocks_skipped = %d, want %d (slice report)", got, rep.BlocksSkipped)
	}
	if counters["trace.read.skipped_bytes"] <= 0 {
		t.Error("trace.read.skipped_bytes not accounted")
	}
}

// TestColumnarCompressionRatio pins the deterministic size floor: the
// columnar encoding of the million-event trace is at least 10x smaller
// than the row binary encoding (25 bytes/event).
func TestColumnarCompressionRatio(t *testing.T) {
	tr, _ := bigWorkload()
	var bin, col bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteColumnar(&col); err != nil {
		t.Fatal(err)
	}
	ratio := float64(bin.Len()) / float64(col.Len())
	t.Logf("binary %d B, columnar %d B (%.2f B/event), ratio %.1fx",
		bin.Len(), col.Len(), float64(col.Len())/float64(tr.Len()), ratio)
	if ratio < 10 {
		t.Errorf("compression ratio %.1fx vs row binary, want >= 10x", ratio)
	}
}

// bestOf times fn several times and keeps the minimum, which is robust
// against scheduling noise on shared CI machines: a loaded machine slows
// every codec, and the minimum discards one-off stalls.
func bestOf(runs int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestColumnarDecodeThroughput is the whole-trace regression floor: the
// columnar decode of the million-event trace must be at least 2x faster
// than the row binary decode. On a single core both codecs are bounded by
// materializing the same 48 MB event slice, which caps the full-decode
// gap near 3x regardless of how cheap the column transforms get (the
// parallel block decoder only widens it on multi-core machines), so the
// headline 4x criterion is asserted on the query path below, where the
// block index — not raw decode speed — is what the format buys.
func TestColumnarDecodeThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("timing thresholds are meaningless under the race detector")
	}
	tr, _ := bigWorkload()
	var bin, col bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteColumnar(&col); err != nil {
		t.Fatal(err)
	}

	fullDecode := func(enc []byte) func() {
		return func() {
			r, err := perturb.NewTraceReader(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			dec, err := perturb.ReadTrace(r)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Len() != tr.Len() {
				t.Fatalf("decoded %d events, want %d", dec.Len(), tr.Len())
			}
		}
	}

	binTime := bestOf(5, fullDecode(bin.Bytes()))
	colTime := bestOf(5, fullDecode(col.Bytes()))
	speedup := float64(binTime) / float64(colTime)
	t.Logf("binary full decode %v, columnar full decode %v, speedup %.1fx", binTime, colTime, speedup)
	if speedup < 2 {
		t.Errorf("columnar full-decode speedup %.1fx vs row binary, want >= 2x", speedup)
	}
}

// TestColumnarQueryDecodeThroughput is the ISSUE 6 acceptance criterion:
// answering a narrow time-window query from the columnar encoding is at
// least 4x faster than from the row binary encoding. The row codec has no
// index, so any query decodes the full million events; the columnar
// reader consults the per-block min/max index and decodes only the blocks
// that intersect the window (under 15% of them, pinned by the
// effectiveness test above). In practice the margin is well over 10x.
func TestColumnarQueryDecodeThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("timing thresholds are meaningless under the race detector")
	}
	tr, _ := bigWorkload()
	var bin, col bytes.Buffer
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteColumnar(&col); err != nil {
		t.Fatal(err)
	}

	dur := tr.End() - tr.Start()
	q := perturb.SliceQuery{
		HasWindow: true,
		From:      tr.Start() + dur/20,
		To:        tr.Start() + dur/10,
	}

	var want, got int
	binTime := bestOf(5, func() {
		// The row binary codec must decode every event to answer any
		// query; the window restriction happens after the fact.
		dec, err := perturb.ReadTraceBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		want = 0
		for _, e := range dec.Events {
			if e.Time >= q.From && e.Time <= q.To {
				want++
			}
		}
	})
	colTime := bestOf(5, func() {
		sl, _, err := perturb.SliceTrace(bytes.NewReader(col.Bytes()), q)
		if err != nil {
			t.Fatal(err)
		}
		got = sl.Len()
	})
	if want == 0 || got < want {
		t.Fatalf("window query kept %d events via columnar slice, want >= %d (binary scan)", got, want)
	}

	speedup := float64(binTime) / float64(colTime)
	t.Logf("binary query %v (full decode), columnar query %v (block skipping), speedup %.1fx", binTime, colTime, speedup)
	if speedup < 4 {
		t.Errorf("columnar windowed-query speedup %.1fx vs row binary, want >= 4x", speedup)
	}
}
