package perturb_test

import (
	"bytes"
	"context"
	"math/rand"
	"runtime"
	"testing"

	"perturb"
	"perturb/internal/testgen"
)

// The facade streaming tests mirror the core metamorphic suite one level
// up: a StreamAnalyzer session over each golden trace — fed in random
// chunks or through a codec reader — must reproduce batch Analyze
// exactly, and the low-memory mode must actually bound the session's
// heap on a million-event trace.

func streamBatch(t *testing.T, m *perturb.Trace, cal perturb.Calibration) *perturb.Approximation {
	t.Helper()
	a, err := perturb.Analyze(m, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatalf("batch Analyze: %v", err)
	}
	return a
}

func approxBinary(t *testing.T, a *perturb.Approximation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Trace.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestStreamAnalyzerGolden(t *testing.T) {
	cal := goldenCal()
	for name, m := range goldenTraces() {
		batch := streamBatch(t, m, cal)
		sa, err := perturb.NewStreamAnalyzer(cal, perturb.StreamOptions{
			Procs:  m.Procs,
			Window: m.End()/4 + 1,
		})
		if err != nil {
			t.Fatalf("%s: NewStreamAnalyzer: %v", name, err)
		}
		r := rand.New(rand.NewSource(42))
		events := m.Events
		var windows []perturb.WindowResult
		for len(events) > 0 {
			n := 1 + r.Intn(len(events))
			if err := sa.Feed(context.Background(), events[:n]); err != nil {
				t.Fatalf("%s: Feed: %v", name, err)
			}
			events = events[n:]
			for w := range sa.Results() {
				windows = append(windows, w)
			}
		}
		approx, err := sa.Close(context.Background())
		if err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		for w := range sa.Results() {
			windows = append(windows, w)
		}
		if !bytes.Equal(approxBinary(t, approx), approxBinary(t, batch)) {
			t.Errorf("%s: streaming trace differs from batch Analyze", name)
		}
		if approx.Duration != batch.Duration {
			t.Errorf("%s: Duration = %d, batch %d", name, approx.Duration, batch.Duration)
		}
		if len(windows) == 0 {
			t.Errorf("%s: no windows emitted", name)
		}
		var total int
		for i, w := range windows {
			if w.Index < 0 || w.End <= w.Start {
				t.Errorf("%s: window %d has bad bounds [%d,%d)", name, i, w.Start, w.End)
			}
			total += w.Events
		}
		if total < m.Len() {
			t.Errorf("%s: windows cover %d events, trace has %d", name, total, m.Len())
		}
	}
}

// TestStreamAnalyzerFeedReader round-trips a golden trace through the
// binary codec and a TraceReader into a session — the live-file path the
// perturb -follow mode uses — and checks equality with batch.
func TestStreamAnalyzerFeedReader(t *testing.T) {
	cal := goldenCal()
	m := goldenTraces()["doacross"]
	batch := streamBatch(t, m, cal)

	var enc bytes.Buffer
	if err := m.WriteBinary(&enc); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	r, err := perturb.NewTraceReader(&enc)
	if err != nil {
		t.Fatalf("NewTraceReader: %v", err)
	}
	sa, err := perturb.NewStreamAnalyzer(cal, perturb.StreamOptions{Procs: r.Procs()})
	if err != nil {
		t.Fatalf("NewStreamAnalyzer: %v", err)
	}
	if err := sa.FeedReader(context.Background(), r); err != nil {
		t.Fatalf("FeedReader: %v", err)
	}
	approx, err := sa.Close(context.Background())
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(approxBinary(t, approx), approxBinary(t, batch)) {
		t.Error("FeedReader session differs from batch Analyze")
	}
}

// TestStreamAnalyzerLowMemoryFootprint feeds a million-event trace
// through a low-memory session and a retaining session and checks the
// low-memory session's live heap stays well below the retaining one's —
// the property that lets a session follow a trace larger than memory.
func TestStreamAnalyzerLowMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("million-event footprint comparison")
	}
	m := testgen.BackwardWave(8, 250000) // ~1M events
	cal := goldenCal()

	grown := func(low bool) uint64 {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		sa, err := perturb.NewStreamAnalyzer(cal, perturb.StreamOptions{
			Procs:     m.Procs,
			Window:    m.End() / 100,
			LowMemory: low,
		})
		if err != nil {
			t.Fatalf("NewStreamAnalyzer: %v", err)
		}
		for off := 0; off < len(m.Events); off += 4096 {
			end := off + 4096
			if end > len(m.Events) {
				end = len(m.Events)
			}
			if err := sa.Feed(context.Background(), m.Events[off:end]); err != nil {
				t.Fatalf("Feed: %v", err)
			}
			sa.Results()
		}
		// Measure the session's steady state before Close: the retaining
		// session holds every event (and later its re-timed copy); the
		// low-memory one holds only frontier synchronization state.
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if _, err := sa.Close(context.Background()); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if after.HeapAlloc < before.HeapAlloc {
			return 0
		}
		return after.HeapAlloc - before.HeapAlloc
	}

	full := grown(false)
	low := grown(true)
	t.Logf("live heap before Close: retaining %d bytes, low-memory %d bytes", full, low)
	if low*2 >= full {
		t.Errorf("low-memory session grew %d bytes, not well under retaining session's %d", low, full)
	}
}
