package perturb

import (
	"context"
	"io"
	"iter"
	"sync"

	"perturb/internal/core"
	"perturb/internal/obs"
)

// Streaming analysis: the incremental counterpart of Analyze. A session
// ingests measured events in arrival order — from a live tracer, a
// growing file, or a network stream — and emits windowed intermediate
// results while the run is still in progress; closing the session yields
// the same Approximation batch Analyze computes over the same events,
// because both run the same engine. Batch Analyze is the one-shot form
// (feed everything, close immediately); StreamAnalyzer is the general
// form.
type (
	// StreamOptions configures NewStreamAnalyzer: analysis mode, repair,
	// window geometry, memory policy. The zero value streams the classic
	// event-based analysis with a single cumulative window at Close.
	StreamOptions = core.StreamOptions
	// WindowResult is one window of streaming output: waiting,
	// parallelism and per-processor timing for a measured-time interval.
	WindowResult = core.WindowResult
	// WindowProc is one processor's share of a WindowResult.
	WindowProc = core.WindowProc
)

// StreamAnalyzer is an incremental analysis session over a live event
// stream. Feed events as they arrive (any chunking — results never
// depend on how the stream is split), drain finished windows with
// Results, and Close to obtain the final Approximation:
//
//	sa, _ := perturb.NewStreamAnalyzer(cal, perturb.StreamOptions{
//		Window: 10 * perturb.Microsecond,
//	})
//	for batch := range source {
//		_ = sa.Feed(ctx, batch)
//		for w := range sa.Results() {
//			fmt.Printf("window %d: waiting %v\n", w.Index, w.Waiting)
//		}
//	}
//	approx, _ := sa.Close(ctx)
//
// Windows become available mid-stream when the feed is globally
// time-sorted (the natural order of a merged trace): once the stream's
// high-water mark passes a window's end, no later event can land in it.
// Unsorted feeds still analyze exactly; their windows all surface at
// Close. With StreamOptions.LowMemory the session keeps only
// synchronization state in flight — memory stays bounded regardless of
// trace length — and Close returns a summary-only Approximation.
//
// A StreamAnalyzer is safe for concurrent use, though feeding from one
// goroutine is the typical shape: events must arrive in a single
// well-defined order for results to be meaningful.
type StreamAnalyzer struct {
	mu sync.Mutex
	s  *core.Stream
}

// NewStreamAnalyzer starts a streaming analysis session under the
// calibration. It fails for option combinations that cannot run
// incrementally: the Liberal mode (whole-trace rescheduling) and
// Repair together with LowMemory (the sanitizer needs the full feed).
func NewStreamAnalyzer(cal Calibration, opts StreamOptions) (*StreamAnalyzer, error) {
	s, err := core.NewStream(cal, opts)
	if err != nil {
		return nil, err
	}
	return &StreamAnalyzer{s: s}, nil
}

// Feed ingests the next events of the stream, in arrival order. The
// analysis advances as far as the new events allow before returning;
// finished windows queue for Results. Validation failures and
// cancellation (ErrCanceled / ErrDeadlineExceeded) abandon the session.
func (a *StreamAnalyzer) Feed(ctx context.Context, events []Event) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.s.Feed(ctx, events)
}

// FeedReader drains a streaming trace reader into the session in
// 4096-event batches: the bridge from the trace codecs (NewTraceReader)
// to streaming analysis without materializing the trace.
func (a *StreamAnalyzer) FeedReader(ctx context.Context, r TraceReader) error {
	batch := make([]Event, 4096)
	for {
		n, err := r.Read(batch)
		if n > 0 {
			if ferr := a.Feed(ctx, batch[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Results yields the finished windows emitted since the last call, in
// window-index order, without blocking — an empty sequence when nothing
// new has finished. Call it between feeds for live output and once after
// Close for the remainder.
func (a *StreamAnalyzer) Results() iter.Seq[WindowResult] {
	a.mu.Lock()
	ws := a.s.Windows()
	a.mu.Unlock()
	return func(yield func(WindowResult) bool) {
		for _, w := range ws {
			if !yield(w) {
				return
			}
		}
	}
}

// Close ends the stream and returns the final Approximation — identical
// to batch Analyze over the same events. Any windows not yet drained
// (including all windows of an unsorted or repair-mode feed) become
// available via Results afterwards. Close is idempotent.
func (a *StreamAnalyzer) Close(ctx context.Context) (*Approximation, error) {
	defer obs.StartSpan("perturb.stream.close").End()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.s.Close(ctx)
}
