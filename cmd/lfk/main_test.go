package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunKernelsRange(t *testing.T) {
	var buf bytes.Buffer
	if err := runKernels(&buf, 3, 5, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kernel  3", "kernel  4", "kernel  5", "checksum"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if err := runKernels(&buf, 25, 25, 1); err == nil {
		t.Error("kernel 25 should fail")
	}
}

func TestRunDoacross(t *testing.T) {
	var buf bytes.Buffer
	if err := runDoacross(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"untraced wall time", "approximated time", "checksum"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "2.469196e+02") {
		t.Errorf("checksum should match the sequential inner product: %s", out)
	}
}
