// Command lfk runs the numeric Livermore Fortran Kernels (package lfk)
// and prints per-kernel wall times and checksums. With -doacross it also
// runs kernel 3 as a goroutine DOACROSS loop with advance/await
// synchronization and tracing, applies event-based perturbation analysis
// to the real trace, and reports the approximation against the untraced
// run.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"perturb/internal/buildinfo"
	"perturb/internal/lfk"
	"perturb/internal/rt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lfk: ")
	kernel := flag.Int("k", 0, "run only this kernel (0 = all)")
	reps := flag.Int("reps", 100, "repetitions per kernel for timing")
	doacross := flag.Bool("doacross", false, "run kernel 3 as a traced goroutine DOACROSS loop")
	workers := flag.Int("workers", 0, "goroutines for -doacross (0 = GOMAXPROCS, min 2, max 8)")
	version := flag.Bool("version", false, "print build and version information and exit")
	flag.Parse()

	if *version {
		buildinfo.Resolve().Print(os.Stdout, "lfk")
		return
	}

	if *doacross {
		if err := runDoacross(os.Stdout, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	from, to := 1, 24
	if *kernel != 0 {
		from, to = *kernel, *kernel
	}
	if err := runKernels(os.Stdout, from, to, *reps); err != nil {
		log.Fatal(err)
	}
}

// runKernels times kernels from..to and prints checksums.
func runKernels(w io.Writer, from, to, reps int) error {
	if reps < 1 {
		reps = 1
	}
	d := lfk.NewData()
	for k := from; k <= to; k++ {
		d.Reset()
		check, err := lfk.Run(k, d)
		if err != nil {
			return err
		}
		d.Reset()
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := lfk.Run(k, d); err != nil {
				return err
			}
		}
		per := time.Since(t0) / time.Duration(reps)
		fmt.Fprintf(w, "kernel %2d  %-55s %10v/run  checksum %.6e\n", k, lfk.Name(k), per, check)
	}
	return nil
}

// runDoacross runs kernel 3 as a goroutine DOACROSS loop through the full
// perturbation-study pipeline.
func runDoacross(w io.Writer, workers int) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		workers = 2
	}
	if workers > 8 {
		workers = 8
	}
	const strips = 512
	data := lfk.NewData()
	parts := lfk.Kernel3Strips(data, strips)

	// The critical region folds strip partials into the shared
	// accumulator; q accumulates across the study's several runs, so the
	// reported checksum is the single-run sum of partials.
	var q float64
	res, err := rt.Study(rt.StudyConfig{
		Workers: workers, Iters: strips, Distance: 1,
	}, func(c *rt.Ctx) {
		c.Step(0)
		p := parts[c.Iter]
		c.CriticalBegin()
		q += p
		c.CriticalEnd()
	})
	if err != nil {
		return err
	}
	var checksum float64
	for _, p := range parts {
		checksum += p
	}
	_ = q
	fmt.Fprintf(w, "kernel 3 DOACROSS on %d goroutines, %d strips\n", workers, strips)
	fmt.Fprintf(w, "  untraced wall time:   %v\n", res.Untraced)
	fmt.Fprintf(w, "  traced wall time:     %v (%.2fx, %d events, probe ~%v)\n",
		res.Traced, res.Slowdown(), res.Trace.Len(), time.Duration(res.Cal.Overheads.Event))
	fmt.Fprintf(w, "  approximated time:    %v (%.2fx of untraced)\n",
		time.Duration(res.Approx.Duration), res.RecoveryRatio())
	fmt.Fprintf(w, "  checksum:             %.6e\n", checksum)
	return nil
}
