// Command perturb simulates a Livermore loop on the modeled machine,
// instruments it, runs perturbation analysis, and reports execution-time
// ratios and waiting statistics. Traces can be saved and re-analyzed.
//
// Usage:
//
//	perturb -loop 17 [flags]
//
// Flags:
//
//	-loop N        Livermore kernel number (default 17)
//	-analysis S    time | event | liberal (default event)
//	-workers N     run event analysis on N shard workers (0 = sequential)
//	-sync          instrument advance/await operations (default true)
//	-probe D       per-event probe cost, e.g. 5us (default paper costs)
//	-procs N       processors (default 8)
//	-schedule S    interleaved | blocked | dynamic (default interleaved)
//	-save FILE     write the measured trace (text format) to FILE
//	-load FILE     skip simulation, analyze the trace in FILE
//	               (text or binary, auto-detected, decoded as a stream)
//	-waiting       print per-processor waiting statistics
//	-timeline      print the busy/waiting timeline
//	-critpath      print the critical path summary
//	-profile       print the per-statement time profile
//	-svg FILE      write the approximated timeline as SVG to FILE
//	-quiet         print only the summary line
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"perturb"
	"perturb/internal/textplot"
)

// options collects everything main parses from flags, so the study itself
// is testable.
type options struct {
	loop     int
	analysis string
	workers  int
	withSync bool
	probe    time.Duration
	procs    int
	schedule string
	saveFile string
	loadFile string
	waiting  bool
	timeline bool
	critpath bool
	profile  bool
	svgFile  string
	quiet    bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perturb: ")

	var o options
	flag.IntVar(&o.loop, "loop", 17, "Livermore kernel number (1-24)")
	flag.StringVar(&o.analysis, "analysis", "event", "analysis: time, event or liberal")
	flag.IntVar(&o.workers, "workers", 0, "shard workers for the event analysis (0 = sequential, -1 = GOMAXPROCS)")
	flag.BoolVar(&o.withSync, "sync", true, "instrument advance/await operations")
	flag.DurationVar(&o.probe, "probe", 0, "uniform per-event probe cost (0 = paper costs)")
	flag.IntVar(&o.procs, "procs", 8, "number of processors")
	flag.StringVar(&o.schedule, "schedule", "interleaved", "iteration schedule: interleaved, blocked or dynamic")
	flag.StringVar(&o.saveFile, "save", "", "write the measured trace (text) to this file")
	flag.StringVar(&o.loadFile, "load", "", "analyze a previously saved trace instead of simulating")
	flag.BoolVar(&o.waiting, "waiting", false, "print per-processor waiting statistics")
	flag.BoolVar(&o.timeline, "timeline", false, "print the busy/waiting timeline")
	flag.BoolVar(&o.critpath, "critpath", false, "print the critical path summary")
	flag.BoolVar(&o.profile, "profile", false, "print the per-statement time profile")
	flag.StringVar(&o.svgFile, "svg", "", "write the approximated timeline as SVG to this file")
	flag.BoolVar(&o.quiet, "quiet", false, "print only the summary line")
	flag.Parse()

	if err := study(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

// study runs the simulate / instrument / analyze / report pipeline.
func study(w io.Writer, o options) error {
	cfg := perturb.Alliant()
	cfg.Procs = o.procs
	switch strings.ToLower(o.schedule) {
	case "interleaved":
		cfg.Schedule = perturb.Interleaved
	case "blocked":
		cfg.Schedule = perturb.Blocked
	case "dynamic":
		cfg.Schedule = perturb.Dynamic
	default:
		return fmt.Errorf("unknown schedule %q", o.schedule)
	}

	ovh := perturb.PaperOverheads()
	if o.probe > 0 {
		ovh = perturb.UniformOverheads(perturb.Time(o.probe.Nanoseconds()))
	}
	cal := perturb.ExactCalibration(ovh, cfg)

	loop, err := perturb.LivermoreLoop(o.loop)
	if err != nil {
		return err
	}

	var measured *perturb.Trace
	var actualDur perturb.Time
	haveActual := false
	if o.loadFile != "" {
		f, err := os.Open(o.loadFile)
		if err != nil {
			return err
		}
		r, rerr := perturb.NewTraceReader(f)
		if rerr == nil {
			measured, rerr = perturb.ReadTrace(r)
		}
		f.Close()
		if rerr != nil {
			return rerr
		}
	} else {
		actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
		if err != nil {
			return err
		}
		actualDur = actual.Duration
		haveActual = true
		res, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, o.withSync), cfg)
		if err != nil {
			return err
		}
		measured = res.Trace
	}

	if o.saveFile != "" {
		f, err := os.Create(o.saveFile)
		if err != nil {
			return err
		}
		err = measured.WriteText(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	var approx *perturb.Approximation
	switch strings.ToLower(o.analysis) {
	case "time":
		approx, err = perturb.AnalyzeTimeBased(measured, cal)
	case "event":
		if o.workers != 0 {
			approx, err = perturb.AnalyzeEventBasedParallel(measured, cal, o.workers)
		} else {
			approx, err = perturb.AnalyzeEventBased(measured, cal)
		}
	case "liberal":
		approx, err = perturb.AnalyzeLiberal(measured, cal, perturb.LiberalOptions{
			Procs: cfg.Procs, Distance: loop.Distance, Schedule: cfg.Schedule,
		})
	default:
		return fmt.Errorf("unknown analysis %q", o.analysis)
	}
	if err != nil {
		return err
	}

	mdur := time.Duration(measured.End()) * time.Nanosecond
	adur := time.Duration(approx.Duration) * time.Nanosecond
	if haveActual {
		act := time.Duration(actualDur) * time.Nanosecond
		fmt.Fprintf(w, "LL%d (%s): actual %v  measured %v (%.2fx)  approximated %v (%.3fx of actual)\n",
			o.loop, loop.Name, act, mdur,
			float64(measured.End())/float64(actualDur),
			adur, float64(approx.Duration)/float64(actualDur))
	} else {
		fmt.Fprintf(w, "LL%d (%s): measured %v  approximated %v (%.3fx of measured)\n",
			o.loop, loop.Name, mdur, adur, float64(approx.Duration)/float64(measured.End()))
	}
	if o.svgFile != "" {
		if err := writeSVG(o, cal, approx); err != nil {
			return err
		}
	}
	if o.quiet {
		return nil
	}
	fmt.Fprintf(w, "events: %d   waits kept %d, removed %d, introduced %d\n",
		measured.Len(), approx.WaitsKept, approx.WaitsRemoved, approx.WaitsIntroduced)

	if o.waiting {
		ws, err := perturb.Waiting(approx.Trace, cal)
		if err != nil {
			return err
		}
		pct := perturb.WaitingPercent(ws, approx.Duration)
		fmt.Fprintln(w, "\nper-processor waiting (approximated execution):")
		for p, pw := range ws {
			fmt.Fprintf(w, "  proc %d: await %8v  barrier %8v  (%.2f%% of total)\n",
				p, time.Duration(pw.Await), time.Duration(pw.Barrier), pct[p])
		}
	}

	if o.critpath {
		path, err := perturb.AnalyzeCriticalPath(approx.Trace)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s\n", path)
		fmt.Fprintf(w, "  per-processor shares:")
		for pr, d := range path.ProcTime {
			if d > 0 {
				fmt.Fprintf(w, "  p%d=%v", pr, time.Duration(d))
			}
		}
		fmt.Fprintln(w)
	}

	if o.profile {
		prof, err := perturb.StatementProfile(approx.Trace)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nper-statement profile (approximated execution):")
		shown := 0
		for _, p := range prof {
			if p.Stmt < 0 {
				continue // runtime markers
			}
			label := ""
			if s, ok := loop.StmtByID(p.Stmt); ok {
				label = s.Label
			}
			fmt.Fprintf(w, "  s%-4d %-40s count %6d  total %10v  mean %8v\n",
				p.Stmt, label, p.Count, time.Duration(p.Total), time.Duration(p.Mean()))
			shown++
			if shown >= 12 {
				break
			}
		}
	}

	if o.timeline {
		lanes, err := timelineLanes(cal, approx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := textplot.Gantt(w, "approximated timeline", lanes, 0, approx.Duration, 96); err != nil {
			return err
		}
	}
	return nil
}

// timelineLanes converts the approximation's busy/waiting intervals into
// plot lanes.
func timelineLanes(cal perturb.Calibration, approx *perturb.Approximation) ([]textplot.Lane, error) {
	tl, err := perturb.Timeline(approx.Trace, cal)
	if err != nil {
		return nil, err
	}
	lanes := make([]textplot.Lane, len(tl))
	for p, ivs := range tl {
		lanes[p].Label = fmt.Sprintf("proc %d", p)
		for _, iv := range ivs {
			lanes[p].Spans = append(lanes[p].Spans,
				textplot.Span{Start: iv.Start, End: iv.End, Waiting: iv.Waiting})
		}
	}
	return lanes, nil
}

// writeSVG renders the approximated timeline to the -svg file.
func writeSVG(o options, cal perturb.Calibration, approx *perturb.Approximation) error {
	lanes, err := timelineLanes(cal, approx)
	if err != nil {
		return err
	}
	f, err := os.Create(o.svgFile)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("LL%d approximated timeline", o.loop)
	err = textplot.GanttSVG(f, title, lanes, 0, approx.Duration, 960)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
