// Command perturb simulates a Livermore loop on the modeled machine,
// instruments it, runs perturbation analysis, and reports execution-time
// ratios and waiting statistics. Traces can be saved and re-analyzed.
//
// Usage:
//
//	perturb -loop 17 [flags]
//
// Flags:
//
//	-loop N        Livermore kernel number (default 17)
//	-analysis S    time | event | liberal (default event)
//	-workers N     run event analysis on N shard workers (0 = sequential)
//	-inject P      drop each probe record with probability P (fault model)
//	-seed N        fault-injection seed (default 1)
//	-repair        sanitize the trace and analyze in degraded mode
//	-sync          instrument advance/await operations (default true)
//	-probe D       per-event probe cost, e.g. 5us (default paper costs)
//	-procs N       processors (default 8)
//	-schedule S    interleaved | blocked | dynamic (default interleaved)
//	-save FILE     write the measured trace (text format) to FILE
//	-load FILE     skip simulation, analyze the trace in FILE
//	               (text, binary or columnar, auto-detected, decoded as
//	               a stream)
//	-follow FILE   stream-analyze FILE as it grows (tail -f for traces):
//	               windows print as the producer writes events, and the
//	               session closes with the batch-identical summary once
//	               the file has been idle for -follow-idle
//	-window D      streaming window length on the measured-time axis,
//	               e.g. 100us (0 = one cumulative window at the end)
//	-slide D       streaming window spacing (0 = tumbling windows)
//	-follow-idle D end the followed stream after this long without new
//	               data (default 2s)
//	-slice SPEC    analyze only the causally sufficient slice for SPEC,
//	               e.g. 'procs=3 kinds=awaitE window=1000:2500'
//	               (constraints: procs=, stmts=, kinds=, window=from:to);
//	               columnar -load input skips blocks past the window
//	               without decoding them
//	-waiting       print per-processor waiting statistics
//	-timeline      print the busy/waiting timeline
//	-critpath      print the critical path summary
//	-profile       print the per-statement time profile
//	-svg FILE      write the approximated timeline as SVG to FILE
//	-remote URLs   send the trace to a perturbd service instead of
//	               analyzing locally; shed requests are retried with
//	               backoff. A comma-separated list (http://a,http://b)
//	               forms a fleet: traces route to endpoints by consistent
//	               hashing on their content address, with failover to the
//	               next replica on transport errors and 503s. Detail
//	               views (-waiting, -timeline, ...) need the approximated
//	               trace and stay local-only.
//	-hedge         with a multi-endpoint -remote, mirror a slow request
//	               to the next-choice replica after the endpoint's recent
//	               p90 latency; first answer wins, the loser is canceled
//	-hedge-after D fix the hedge delay (e.g. 50ms) instead of deriving it
//	               from the endpoint's recent p90 latency
//	-quiet         print only the summary line
//	-stats         print pipeline span timings and engine telemetry to
//	               stderr: a human-readable summary followed by one JSON
//	               line (machine-readable, starts with '{')
//	-debug-addr A  serve expvar (/debug/vars) and pprof (/debug/pprof/)
//	               on this address, e.g. localhost:6060
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"perturb"
	"perturb/internal/buildinfo"
	"perturb/internal/obs"
	"perturb/internal/server"
	"perturb/internal/textplot"
)

// options collects everything main parses from flags, so the study itself
// is testable.
type options struct {
	loop      int
	analysis  string
	workers   int
	inject    float64
	seed      uint64
	repair    bool
	withSync  bool
	probe     time.Duration
	procs     int
	schedule  string
	saveFile  string
	loadFile  string
	sliceSpec string

	followFile string
	window     time.Duration
	slide      time.Duration
	followIdle time.Duration

	waiting    bool
	timeline   bool
	critpath   bool
	profile    bool
	svgFile    string
	remote     string
	hedge      bool
	hedgeAfter time.Duration
	quiet      bool
	stats      bool
	debugAddr  string
	statsW     io.Writer // -stats destination; nil means os.Stderr
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perturb: ")

	var o options
	flag.IntVar(&o.loop, "loop", 17, "Livermore kernel number (1-24)")
	flag.StringVar(&o.analysis, "analysis", "event", "analysis: time, event or liberal")
	flag.IntVar(&o.workers, "workers", 0, "shard workers for the event analysis (0 = sequential, -1 = GOMAXPROCS)")
	flag.Float64Var(&o.inject, "inject", 0, "drop each probe record with this probability before analyzing")
	flag.Uint64Var(&o.seed, "seed", 1, "fault-injection seed")
	flag.BoolVar(&o.repair, "repair", false, "sanitize the trace and analyze in degraded mode")
	flag.BoolVar(&o.withSync, "sync", true, "instrument advance/await operations")
	flag.DurationVar(&o.probe, "probe", 0, "uniform per-event probe cost (0 = paper costs)")
	flag.IntVar(&o.procs, "procs", 8, "number of processors")
	flag.StringVar(&o.schedule, "schedule", "interleaved", "iteration schedule: interleaved, blocked or dynamic")
	flag.StringVar(&o.saveFile, "save", "", "write the measured trace (text) to this file")
	flag.StringVar(&o.loadFile, "load", "", "analyze a previously saved trace instead of simulating")
	flag.StringVar(&o.sliceSpec, "slice", "", "analyze only the causally sufficient slice for this query (e.g. 'procs=3 window=1000:2500')")
	flag.StringVar(&o.followFile, "follow", "", "stream-analyze this trace file as it grows (tail -f for traces)")
	flag.DurationVar(&o.window, "window", 0, "streaming window length in measured time, e.g. 100us (0 = one cumulative window)")
	flag.DurationVar(&o.slide, "slide", 0, "streaming window spacing (0 = tumbling windows)")
	flag.DurationVar(&o.followIdle, "follow-idle", 2*time.Second, "end a followed stream after this long without new data")
	flag.BoolVar(&o.waiting, "waiting", false, "print per-processor waiting statistics")
	flag.BoolVar(&o.timeline, "timeline", false, "print the busy/waiting timeline")
	flag.BoolVar(&o.critpath, "critpath", false, "print the critical path summary")
	flag.BoolVar(&o.profile, "profile", false, "print the per-statement time profile")
	flag.StringVar(&o.svgFile, "svg", "", "write the approximated timeline as SVG to this file")
	flag.StringVar(&o.remote, "remote", "", "analyze on a perturbd service instead of locally: one base URL, or a comma-separated fleet")
	flag.BoolVar(&o.hedge, "hedge", false, "hedge slow fleet requests to the next-choice replica (needs a multi-endpoint -remote)")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "fixed hedge delay, e.g. 50ms (0 = derive from the endpoint's recent p90 latency; needs -hedge)")
	flag.BoolVar(&o.quiet, "quiet", false, "print only the summary line")
	flag.BoolVar(&o.stats, "stats", false, "print pipeline/telemetry statistics (human summary + one JSON line) to stderr")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print build and version information and exit")
	flag.Parse()

	if *version {
		buildinfo.Resolve().Print(os.Stdout, "perturb")
		return
	}

	if err := validateOptions(o, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "perturb: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if o.debugAddr != "" {
		perturb.EnableObservability(true)
		d, err := perturb.ServeDebug(o.debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		log.Printf("debug server on http://%s/debug/vars (pprof under /debug/pprof/)", d.Addr())
	}

	if err := study(os.Stdout, o); err != nil {
		log.Fatal(err)
	}
}

// validateOptions rejects flag combinations that cannot run before any
// work starts; main reports the error with usage and exits non-zero.
func validateOptions(o options, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(args, " "))
	}
	if o.workers < -1 {
		return fmt.Errorf("-workers must be -1 (GOMAXPROCS), 0 (sequential) or positive, got %d", o.workers)
	}
	if o.procs < 1 {
		return fmt.Errorf("-procs must be at least 1, got %d", o.procs)
	}
	if o.probe < 0 {
		return fmt.Errorf("-probe must not be negative, got %v", o.probe)
	}
	if o.loadFile != "" && o.saveFile != "" {
		return fmt.Errorf("-load and -save are mutually exclusive (use tracecat to convert traces)")
	}
	if o.inject < 0 || o.inject >= 1 {
		return fmt.Errorf("-inject must be a probability in [0, 1), got %v", o.inject)
	}
	if o.sliceSpec != "" {
		if _, err := perturb.ParseSliceQuery(o.sliceSpec); err != nil {
			return fmt.Errorf("-slice: %w", err)
		}
		if o.inject > 0 {
			return fmt.Errorf("-slice needs a structurally valid trace and cannot follow -inject")
		}
	}
	if o.window < 0 || o.slide < 0 {
		return fmt.Errorf("-window and -slide must not be negative")
	}
	if o.followFile == "" && (o.window != 0 || o.slide != 0) {
		return fmt.Errorf("-window and -slide only apply to a -follow stream")
	}
	if o.followFile != "" {
		if o.followIdle <= 0 {
			return fmt.Errorf("-follow-idle must be positive, got %v", o.followIdle)
		}
		switch a := strings.ToLower(o.analysis); a {
		case "event", "time":
		default:
			return fmt.Errorf("-follow cannot run the %s analysis incrementally (use event or time)", a)
		}
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{o.loadFile != "", "-load"}, {o.saveFile != "", "-save"},
			{o.sliceSpec != "", "-slice"}, {o.inject > 0, "-inject"},
			{o.remote != "", "-remote"}, {o.waiting, "-waiting"},
			{o.timeline, "-timeline"}, {o.critpath, "-critpath"},
			{o.profile, "-profile"}, {o.svgFile != "", "-svg"},
		} {
			if bad.set {
				return fmt.Errorf("%s cannot be combined with -follow (the stream reports windows and a summary)", bad.flag)
			}
		}
	}
	if o.hedge && len(remoteEndpoints(o.remote)) < 2 {
		return fmt.Errorf("-hedge needs a multi-endpoint -remote (comma-separated base URLs)")
	}
	if o.hedgeAfter < 0 {
		return fmt.Errorf("-hedge-after must be non-negative, got %v", o.hedgeAfter)
	}
	if o.hedgeAfter > 0 && !o.hedge {
		return fmt.Errorf("-hedge-after needs -hedge")
	}
	if o.remote != "" {
		for _, ep := range remoteEndpoints(o.remote) {
			if !strings.HasPrefix(ep, "http://") && !strings.HasPrefix(ep, "https://") {
				return fmt.Errorf("-remote endpoints must be http(s) base URLs, got %q", ep)
			}
		}
		if strings.ToLower(o.analysis) == "liberal" {
			return fmt.Errorf("-remote cannot run the liberal analysis (it needs loop structure the service does not have)")
		}
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{o.waiting, "-waiting"}, {o.timeline, "-timeline"},
			{o.critpath, "-critpath"}, {o.profile, "-profile"},
			{o.svgFile != "", "-svg"},
		} {
			if bad.set {
				return fmt.Errorf("%s needs the approximated trace and cannot be combined with -remote", bad.flag)
			}
		}
	}
	return nil
}

// derived holds every requested report view, computed in the metrics
// phase so rendering (the report phase) is pure output.
type derived struct {
	ws    []perturb.ProcWaiting
	pct   []float64
	path  *perturb.CriticalPath
	prof  []perturb.StmtProfile
	lanes []textplot.Lane
}

// study runs the load / analyze / metrics / report pipeline. Each phase
// is traced as an obs span; -stats resets the telemetry layer, enables
// it for the run, and emits the snapshot afterwards.
func study(w io.Writer, o options) error {
	if o.stats {
		perturb.ResetObservability()
		perturb.EnableObservability(true)
		defer perturb.EnableObservability(false)
	}

	if o.followFile != "" {
		if err := followStudy(w, o); err != nil {
			return err
		}
		return studyStats(o)
	}

	cfg := perturb.Alliant()
	cfg.Procs = o.procs
	switch strings.ToLower(o.schedule) {
	case "interleaved":
		cfg.Schedule = perturb.Interleaved
	case "blocked":
		cfg.Schedule = perturb.Blocked
	case "dynamic":
		cfg.Schedule = perturb.Dynamic
	default:
		return fmt.Errorf("unknown schedule %q", o.schedule)
	}

	ovh := perturb.PaperOverheads()
	if o.probe > 0 {
		ovh = perturb.UniformOverheads(perturb.Time(o.probe.Nanoseconds()))
	}
	cal := perturb.ExactCalibration(ovh, cfg)

	loop, err := perturb.LivermoreLoop(o.loop)
	if err != nil {
		return err
	}

	measured, actualDur, haveActual, srep, err := loadPhase(o, loop, cfg, ovh)
	if err != nil {
		return err
	}
	if srep != nil && !o.quiet {
		fmt.Fprintf(w, "slice: %d of %d events kept (%d selected)", srep.Kept, srep.Total, srep.Selected)
		if srep.BlocksRead+srep.BlocksSkipped > 0 {
			fmt.Fprintf(w, ", %d blocks decoded, %d skipped", srep.BlocksRead, srep.BlocksSkipped)
		}
		fmt.Fprintln(w)
	}

	if o.inject > 0 {
		var frep *perturb.FaultReport
		measured, frep = perturb.InjectFaults(measured, perturb.DropFaults(o.inject, o.seed))
		if !o.quiet {
			fmt.Fprintf(w, "fault injection: %d probe records dropped (rate %g, seed %d)\n",
				frep.Total(), o.inject, o.seed)
		}
	}

	if o.remote != "" {
		return remotePhase(w, o, loop, measured, cal, actualDur, haveActual)
	}

	approx, err := analyzePhase(o, measured, cal, loop, cfg)
	if err != nil {
		return err
	}

	d, err := metricsPhase(o, cal, approx)
	if err != nil {
		return err
	}

	if err := reportPhase(w, o, loop, measured, approx, d, actualDur, haveActual); err != nil {
		return err
	}

	return studyStats(o)
}

// studyStats emits the -stats telemetry snapshot after a pipeline run.
func studyStats(o options) error {
	if !o.stats {
		return nil
	}
	statsW := o.statsW
	if statsW == nil {
		statsW = os.Stderr
	}
	snap := perturb.ObservabilitySnapshot()
	if err := snap.WriteText(statsW); err != nil {
		return err
	}
	return json.NewEncoder(statsW).Encode(snap)
}

// loadPhase produces the measured trace, either by simulating the kernel
// (plus an uninstrumented run for the actual duration) or by streaming a
// saved trace from disk; -save persists the result (always the full
// trace, never a slice). With -slice the returned trace is the causally
// sufficient sub-trace for the query — on columnar -load input the
// decoder skips blocks the query's window rules out.
func loadPhase(o options, loop *perturb.Loop, cfg perturb.MachineConfig, ovh perturb.Overheads) (measured *perturb.Trace, actualDur perturb.Time, haveActual bool, srep *perturb.SliceReport, err error) {
	defer obs.StartSpan("pipeline.load").End()

	var query perturb.SliceQuery
	if o.sliceSpec != "" {
		query, err = perturb.ParseSliceQuery(o.sliceSpec)
		if err != nil {
			return nil, 0, false, nil, err
		}
	}

	if o.loadFile != "" {
		f, err := os.Open(o.loadFile)
		if err != nil {
			return nil, 0, false, nil, err
		}
		var rerr error
		if o.sliceSpec != "" {
			measured, srep, rerr = perturb.SliceTrace(f, query)
		} else {
			var r perturb.TraceReader
			if r, rerr = perturb.NewTraceReader(f); rerr == nil {
				measured, rerr = perturb.ReadTrace(r)
			}
		}
		f.Close()
		if rerr != nil {
			return nil, 0, false, nil, rerr
		}
		return measured, 0, false, srep, nil
	}

	actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
	if err != nil {
		return nil, 0, false, nil, err
	}
	actualDur = actual.Duration
	haveActual = true
	res, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, o.withSync), cfg)
	if err != nil {
		return nil, 0, false, nil, err
	}
	measured = res.Trace

	if o.saveFile != "" {
		f, err := os.Create(o.saveFile)
		if err != nil {
			return nil, 0, false, nil, err
		}
		err = measured.WriteText(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, 0, false, nil, err
		}
	}
	if o.sliceSpec != "" {
		measured, srep, err = perturb.Slice(measured, query)
		if err != nil {
			return nil, 0, false, nil, err
		}
	}
	return measured, actualDur, haveActual, srep, nil
}

// analyzePhase runs the selected perturbation analysis through the
// unified Analyze entry point.
func analyzePhase(o options, measured *perturb.Trace, cal perturb.Calibration, loop *perturb.Loop, cfg perturb.MachineConfig) (*perturb.Approximation, error) {
	defer obs.StartSpan("pipeline.analyze").End()

	opts := perturb.AnalyzeOptions{Workers: o.workers, Repair: o.repair}
	switch strings.ToLower(o.analysis) {
	case "time":
		opts.Mode = perturb.TimeBased
	case "event":
		opts.Mode = perturb.EventBased
	case "liberal":
		opts.Mode = perturb.Liberal
		opts.Liberal = perturb.LiberalOptions{
			Procs: cfg.Procs, Distance: loop.Distance, Schedule: cfg.Schedule,
		}
	default:
		return nil, fmt.Errorf("unknown analysis %q", o.analysis)
	}
	return perturb.Analyze(measured, cal, opts)
}

// remoteEndpoints splits a -remote value into its base URLs, dropping
// empty elements so a trailing comma is harmless.
func remoteEndpoints(remote string) []string {
	var eps []string
	for _, ep := range strings.Split(remote, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			eps = append(eps, ep)
		}
	}
	return eps
}

// remotePhase ships the measured trace to a perturbd service and renders
// the summary from the service's response. A single endpoint uses the
// retrying client (shed requests retried with capped backoff, honoring
// Retry-After hints); multiple endpoints form a consistent-hashing fleet
// with failover and, under -hedge, hedged requests.
func remotePhase(w io.Writer, o options, loop *perturb.Loop, measured *perturb.Trace, cal perturb.Calibration, actualDur perturb.Time, haveActual bool) error {
	defer obs.StartSpan("pipeline.remote").End()

	req := server.Request{Workers: o.workers, Repair: o.repair, Cal: &cal}
	if strings.ToLower(o.analysis) == "time" {
		req.Mode = perturb.TimeBased
	}
	var (
		resp *server.Response
		err  error
	)
	if eps := remoteEndpoints(o.remote); len(eps) > 1 {
		var f *server.Fleet
		f, err = server.NewFleet(server.FleetConfig{Endpoints: eps, Hedge: o.hedge, HedgeAfter: o.hedgeAfter})
		if err != nil {
			return err
		}
		resp, err = f.Analyze(context.Background(), measured, req)
	} else {
		c := &server.Client{BaseURL: o.remote}
		resp, err = c.Analyze(context.Background(), measured, req)
	}
	if err != nil {
		return err
	}

	mdur := time.Duration(measured.End()) * time.Nanosecond
	adur := time.Duration(resp.Duration) * time.Nanosecond
	if haveActual {
		act := time.Duration(actualDur) * time.Nanosecond
		fmt.Fprintf(w, "LL%d (%s) via %s: actual %v  measured %v (%.2fx)  approximated %v (%.3fx of actual)\n",
			o.loop, loop.Name, o.remote, act, mdur,
			float64(measured.End())/float64(actualDur),
			adur, float64(resp.Duration)/float64(actualDur))
	} else {
		fmt.Fprintf(w, "LL%d (%s) via %s: measured %v  approximated %v (%.3fx of measured)\n",
			o.loop, loop.Name, o.remote, mdur, adur, float64(resp.Duration)/float64(measured.End()))
	}
	if o.quiet {
		return nil
	}
	fmt.Fprintf(w, "events: %d   waits kept %d, removed %d, introduced %d\n",
		measured.Len(), resp.WaitsKept, resp.WaitsRemoved, resp.WaitsIntroduced)
	if resp.Repair != nil {
		fmt.Fprintf(w, "repair: %s\n", resp.Repair.Summary)
		if len(resp.Confidence) > 0 {
			worst := resp.Confidence[0]
			for _, c := range resp.Confidence[1:] {
				if c.Score < worst.Score {
					worst = c
				}
			}
			fmt.Fprintf(w, "confidence: worst proc %d at %.3f\n", worst.Proc, worst.Score)
		}
	}
	fmt.Fprintf(w, "approximation sha256: %s\n", resp.TraceSHA256)
	if resp.InputSHA256 != "" {
		cached := resp.Cached != nil && *resp.Cached
		fmt.Fprintf(w, "input sha256: %s   served from cache: %v\n", resp.InputSHA256, cached)
	}
	return nil
}

// metricsPhase derives every view the report will render: waiting
// statistics, critical path, statement profile and timeline lanes.
func metricsPhase(o options, cal perturb.Calibration, approx *perturb.Approximation) (derived, error) {
	defer obs.StartSpan("pipeline.metrics").End()

	var d derived
	if o.quiet && o.svgFile == "" {
		return d, nil
	}
	var err error
	if o.waiting && !o.quiet {
		if d.ws, err = perturb.Waiting(approx.Trace, cal); err != nil {
			return d, err
		}
		d.pct = perturb.WaitingPercent(d.ws, approx.Duration)
	}
	if o.critpath && !o.quiet {
		if d.path, err = perturb.AnalyzeCriticalPath(approx.Trace); err != nil {
			return d, err
		}
	}
	if o.profile && !o.quiet {
		if d.prof, err = perturb.StatementProfile(approx.Trace); err != nil {
			return d, err
		}
	}
	if (o.timeline && !o.quiet) || o.svgFile != "" {
		if d.lanes, err = timelineLanes(cal, approx); err != nil {
			return d, err
		}
	}
	return d, nil
}

// reportPhase renders the summary line, the optional detail sections and
// the SVG export from the precomputed metric views.
func reportPhase(w io.Writer, o options, loop *perturb.Loop, measured *perturb.Trace, approx *perturb.Approximation, d derived, actualDur perturb.Time, haveActual bool) error {
	defer obs.StartSpan("pipeline.report").End()

	mdur := time.Duration(measured.End()) * time.Nanosecond
	adur := time.Duration(approx.Duration) * time.Nanosecond
	if haveActual {
		act := time.Duration(actualDur) * time.Nanosecond
		fmt.Fprintf(w, "LL%d (%s): actual %v  measured %v (%.2fx)  approximated %v (%.3fx of actual)\n",
			o.loop, loop.Name, act, mdur,
			float64(measured.End())/float64(actualDur),
			adur, float64(approx.Duration)/float64(actualDur))
	} else {
		fmt.Fprintf(w, "LL%d (%s): measured %v  approximated %v (%.3fx of measured)\n",
			o.loop, loop.Name, mdur, adur, float64(approx.Duration)/float64(measured.End()))
	}
	if o.svgFile != "" {
		if err := writeSVG(o, d.lanes, approx); err != nil {
			return err
		}
	}
	if o.quiet {
		return nil
	}
	fmt.Fprintf(w, "events: %d   waits kept %d, removed %d, introduced %d\n",
		measured.Len(), approx.WaitsKept, approx.WaitsRemoved, approx.WaitsIntroduced)

	if approx.Repair != nil {
		fmt.Fprintf(w, "repair: %s\n", approx.Repair.Summary())
		if len(approx.Confidence) > 0 {
			worst := approx.Confidence[0]
			for _, c := range approx.Confidence[1:] {
				if c.Score < worst.Score {
					worst = c
				}
			}
			fmt.Fprintf(w, "confidence: worst proc %d at %.3f\n", worst.Proc, worst.Score)
		}
	}

	if o.waiting {
		fmt.Fprintln(w, "\nper-processor waiting (approximated execution):")
		for p, pw := range d.ws {
			fmt.Fprintf(w, "  proc %d: await %8v  barrier %8v  (%.2f%% of total)\n",
				p, time.Duration(pw.Await), time.Duration(pw.Barrier), d.pct[p])
		}
	}

	if o.critpath {
		fmt.Fprintf(w, "\n%s\n", d.path)
		fmt.Fprintf(w, "  per-processor shares:")
		for pr, dur := range d.path.ProcTime {
			if dur > 0 {
				fmt.Fprintf(w, "  p%d=%v", pr, time.Duration(dur))
			}
		}
		fmt.Fprintln(w)
	}

	if o.profile {
		fmt.Fprintln(w, "\nper-statement profile (approximated execution):")
		shown := 0
		for _, p := range d.prof {
			if p.Stmt < 0 {
				continue // runtime markers
			}
			label := ""
			if s, ok := loop.StmtByID(p.Stmt); ok {
				label = s.Label
			}
			fmt.Fprintf(w, "  s%-4d %-40s count %6d  total %10v  mean %8v\n",
				p.Stmt, label, p.Count, time.Duration(p.Total), time.Duration(p.Mean()))
			shown++
			if shown >= 12 {
				break
			}
		}
	}

	if o.timeline {
		fmt.Fprintln(w)
		if err := textplot.Gantt(w, "approximated timeline", d.lanes, 0, approx.Duration, 96); err != nil {
			return err
		}
	}
	return nil
}

// timelineLanes converts the approximation's busy/waiting intervals into
// plot lanes.
func timelineLanes(cal perturb.Calibration, approx *perturb.Approximation) ([]textplot.Lane, error) {
	tl, err := perturb.Timeline(approx.Trace, cal)
	if err != nil {
		return nil, err
	}
	lanes := make([]textplot.Lane, len(tl))
	for p, ivs := range tl {
		lanes[p].Label = fmt.Sprintf("proc %d", p)
		for _, iv := range ivs {
			lanes[p].Spans = append(lanes[p].Spans,
				textplot.Span{Start: iv.Start, End: iv.End, Waiting: iv.Waiting})
		}
	}
	return lanes, nil
}

// writeSVG renders the approximated timeline to the -svg file.
func writeSVG(o options, lanes []textplot.Lane, approx *perturb.Approximation) error {
	f, err := os.Create(o.svgFile)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("LL%d approximated timeline", o.loop)
	err = textplot.GanttSVG(f, title, lanes, 0, approx.Duration, 960)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
