package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"perturb"
)

func defaults() options {
	return options{
		loop:     17,
		analysis: "event",
		withSync: true,
		procs:    8,
		schedule: "interleaved",
	}
}

func TestStudyDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := study(&buf, defaults()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LL17") || !strings.Contains(out, "approximated") {
		t.Errorf("summary missing: %s", out)
	}
	if !strings.Contains(out, "waits kept") {
		t.Error("diagnostics missing")
	}
}

func TestStudyReports(t *testing.T) {
	o := defaults()
	o.waiting, o.timeline, o.critpath, o.profile = true, true, true, true
	var buf bytes.Buffer
	if err := study(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"per-processor waiting", "critical path", "per-statement profile", "approximated timeline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestStudyAnalyses(t *testing.T) {
	for _, a := range []string{"time", "event", "liberal"} {
		o := defaults()
		o.analysis = a
		o.quiet = true
		var buf bytes.Buffer
		if err := study(&buf, o); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

// TestStudyWorkersMatchesSequential: the -workers path must print the
// exact summary of the sequential event analysis.
func TestStudyWorkersMatchesSequential(t *testing.T) {
	var seq bytes.Buffer
	if err := study(&seq, defaults()); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 4} {
		o := defaults()
		o.workers = workers
		var par bytes.Buffer
		if err := study(&par, o); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.String() != seq.String() {
			t.Errorf("workers=%d output differs:\n%s\nvs sequential:\n%s",
				workers, par.String(), seq.String())
		}
	}
}

// TestStudyLoadBinary: -load auto-detects the binary codec.
func TestStudyLoadBinary(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "trace.txt")
	o := defaults()
	o.saveFile = txt
	o.quiet = true
	if err := study(&bytes.Buffer{}, o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(txt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := perturb.ReadTraceText(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "trace.bin")
	bf, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	var fromTxt, fromBin bytes.Buffer
	o2 := defaults()
	o2.loadFile = txt
	o2.workers = 2
	if err := study(&fromTxt, o2); err != nil {
		t.Fatal(err)
	}
	o2.loadFile = bin
	if err := study(&fromBin, o2); err != nil {
		t.Fatal(err)
	}
	if fromTxt.String() != fromBin.String() {
		t.Errorf("binary -load output differs from text:\n%s\nvs\n%s", fromBin.String(), fromTxt.String())
	}
}

func TestStudySaveAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	o := defaults()
	o.saveFile = path
	o.quiet = true
	var buf bytes.Buffer
	if err := study(&buf, o); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not saved: %v", err)
	}
	// Re-analyze the saved trace.
	o2 := defaults()
	o2.loadFile = path
	buf.Reset()
	if err := study(&buf, o2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "of measured") {
		t.Errorf("loaded-trace summary missing: %s", buf.String())
	}
}

func TestStudyErrors(t *testing.T) {
	bad := defaults()
	bad.schedule = "chaotic"
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("unknown schedule should fail")
	}
	bad = defaults()
	bad.analysis = "psychic"
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("unknown analysis should fail")
	}
	bad = defaults()
	bad.loop = 99
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("unknown kernel should fail")
	}
	bad = defaults()
	bad.loadFile = "/nonexistent/trace.txt"
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("missing trace file should fail")
	}
}

func TestValidateOptions(t *testing.T) {
	if err := validateOptions(defaults(), nil); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*options)
		args []string
	}{
		{"extra args", func(o *options) {}, []string{"stray.trace"}},
		{"workers below -1", func(o *options) { o.workers = -2 }, nil},
		{"zero procs", func(o *options) { o.procs = 0 }, nil},
		{"negative probe", func(o *options) { o.probe = -time.Microsecond }, nil},
		{"load with save", func(o *options) { o.loadFile = "a"; o.saveFile = "b" }, nil},
		{"hedge without fleet", func(o *options) { o.remote = "http://a:7077"; o.hedge = true }, nil},
		{"hedge-after without hedge", func(o *options) { o.remote = "http://a:7077,http://b:7077"; o.hedgeAfter = 50 * time.Millisecond }, nil},
		{"negative hedge-after", func(o *options) {
			o.remote = "http://a:7077,http://b:7077"
			o.hedge = true
			o.hedgeAfter = -time.Millisecond
		}, nil},
		{"window without follow", func(o *options) { o.window = time.Millisecond }, nil},
		{"negative slide", func(o *options) { o.followFile = "a"; o.followIdle = time.Second; o.slide = -1 }, nil},
		{"follow with load", func(o *options) { o.followFile = "a"; o.followIdle = time.Second; o.loadFile = "b" }, nil},
		{"follow with remote", func(o *options) { o.followFile = "a"; o.followIdle = time.Second; o.remote = "http://a:7077" }, nil},
		{"follow liberal", func(o *options) { o.followFile = "a"; o.followIdle = time.Second; o.analysis = "liberal" }, nil},
		{"follow zero idle", func(o *options) { o.followFile = "a" }, nil},
		{"non-http fleet endpoint", func(o *options) { o.remote = "http://a:7077,b:7077" }, nil},
	}
	for _, tc := range cases {
		o := defaults()
		tc.mut(&o)
		if err := validateOptions(o, tc.args); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestStudyStatsJSON: -stats emits the human summary plus exactly one
// machine-readable JSON line whose snapshot round-trips and contains a
// span for every pipeline phase and the engine telemetry counters.
func TestStudyStatsJSON(t *testing.T) {
	var out, stats bytes.Buffer
	o := defaults()
	o.quiet = true
	o.workers = 2 // sharded engine, so scheduler telemetry flows
	o.stats = true
	o.statsW = &stats
	if err := study(&out, o); err != nil {
		t.Fatal(err)
	}
	text := stats.String()
	for _, want := range []string{"obs: telemetry enabled=true", "obs: spans", "obs: counters"} {
		if !strings.Contains(text, want) {
			t.Errorf("human stats lack %q:\n%s", want, text)
		}
	}

	var jsonLine string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "{") {
			if jsonLine != "" {
				t.Fatal("more than one JSON line in -stats output")
			}
			jsonLine = line
		}
	}
	if jsonLine == "" {
		t.Fatalf("no JSON line in -stats output:\n%s", text)
	}
	var st perturb.ObsStats
	if err := json.Unmarshal([]byte(jsonLine), &st); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	back, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != jsonLine {
		t.Errorf("stats JSON does not round-trip:\n%s\nvs\n%s", back, jsonLine)
	}

	for _, phase := range []string{"pipeline.load", "pipeline.analyze", "pipeline.metrics", "pipeline.report"} {
		sp, ok := st.Span(phase)
		if !ok || sp.Count < 1 {
			t.Errorf("span %q missing from snapshot (ok=%v count=%d)", phase, ok, sp.Count)
		}
	}
	if _, ok := st.Span("perturb.simulate"); !ok {
		t.Error("facade span perturb.simulate missing")
	}
	if st.Counter("machine.sim.runs") == 0 {
		t.Error("simulator telemetry missing (machine.sim.runs = 0)")
	}
	if st.Counter("core.analysis.events") == 0 {
		t.Error("scheduler telemetry missing (core.analysis.events = 0)")
	}
	found := false
	for _, c := range st.Counters {
		if strings.HasPrefix(c.Name, "trace.read.") {
			found = true
		}
	}
	if !found {
		t.Error("codec counters missing from snapshot")
	}
}

func TestStudySVGExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "timeline.svg")
	o := defaults()
	o.quiet = true
	o.svgFile = path
	if err := study(&bytes.Buffer{}, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("not an SVG: %q", data[:20])
	}
}

// TestStudyFollow streams a growing trace file through the -follow
// pipeline: a writer goroutine appends the saved trace in small chunks
// while the tail reader analyzes it, and the run must report windows plus
// the batch-identical summary once the file goes idle.
func TestStudyFollow(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "trace.txt")
	o := defaults()
	o.saveFile = src
	o.quiet = true
	if err := study(&bytes.Buffer{}, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := perturb.ReadTraceText(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := perturb.Analyze(tr, perturb.ExactCalibration(perturb.PaperOverheads(), perturb.Alliant()), perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	grow := filepath.Join(dir, "grow.txt")
	gf, err := os.Create(grow)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		defer gf.Close()
		for len(data) > 0 {
			n := 2048
			if n > len(data) {
				n = len(data)
			}
			if _, err := gf.Write(data[:n]); err != nil {
				done <- err
				return
			}
			data = data[n:]
			time.Sleep(5 * time.Millisecond)
		}
		done <- nil
	}()

	fo := defaults()
	fo.followFile = grow
	fo.followIdle = time.Second
	fo.window = time.Duration(tr.End()) / 5 * time.Nanosecond
	var buf bytes.Buffer
	if err := study(&buf, fo); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "window 0 [") {
		t.Errorf("no windows reported:\n%s", out)
	}
	want := fmt.Sprintf("events %d  measured %v  approximated %v",
		tr.Len(),
		time.Duration(tr.End())*time.Nanosecond,
		time.Duration(batch.Duration)*time.Nanosecond)
	if !strings.Contains(out, want) {
		t.Errorf("summary %q missing from:\n%s", want, out)
	}
	if !strings.Contains(out, "waits kept") {
		t.Error("diagnostics missing")
	}
}
