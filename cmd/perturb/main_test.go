package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perturb"
)

func defaults() options {
	return options{
		loop:     17,
		analysis: "event",
		withSync: true,
		procs:    8,
		schedule: "interleaved",
	}
}

func TestStudyDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := study(&buf, defaults()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LL17") || !strings.Contains(out, "approximated") {
		t.Errorf("summary missing: %s", out)
	}
	if !strings.Contains(out, "waits kept") {
		t.Error("diagnostics missing")
	}
}

func TestStudyReports(t *testing.T) {
	o := defaults()
	o.waiting, o.timeline, o.critpath, o.profile = true, true, true, true
	var buf bytes.Buffer
	if err := study(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"per-processor waiting", "critical path", "per-statement profile", "approximated timeline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestStudyAnalyses(t *testing.T) {
	for _, a := range []string{"time", "event", "liberal"} {
		o := defaults()
		o.analysis = a
		o.quiet = true
		var buf bytes.Buffer
		if err := study(&buf, o); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

// TestStudyWorkersMatchesSequential: the -workers path must print the
// exact summary of the sequential event analysis.
func TestStudyWorkersMatchesSequential(t *testing.T) {
	var seq bytes.Buffer
	if err := study(&seq, defaults()); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 4} {
		o := defaults()
		o.workers = workers
		var par bytes.Buffer
		if err := study(&par, o); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.String() != seq.String() {
			t.Errorf("workers=%d output differs:\n%s\nvs sequential:\n%s",
				workers, par.String(), seq.String())
		}
	}
}

// TestStudyLoadBinary: -load auto-detects the binary codec.
func TestStudyLoadBinary(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "trace.txt")
	o := defaults()
	o.saveFile = txt
	o.quiet = true
	if err := study(&bytes.Buffer{}, o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(txt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := perturb.ReadTraceText(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "trace.bin")
	bf, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	var fromTxt, fromBin bytes.Buffer
	o2 := defaults()
	o2.loadFile = txt
	o2.workers = 2
	if err := study(&fromTxt, o2); err != nil {
		t.Fatal(err)
	}
	o2.loadFile = bin
	if err := study(&fromBin, o2); err != nil {
		t.Fatal(err)
	}
	if fromTxt.String() != fromBin.String() {
		t.Errorf("binary -load output differs from text:\n%s\nvs\n%s", fromBin.String(), fromTxt.String())
	}
}

func TestStudySaveAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	o := defaults()
	o.saveFile = path
	o.quiet = true
	var buf bytes.Buffer
	if err := study(&buf, o); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not saved: %v", err)
	}
	// Re-analyze the saved trace.
	o2 := defaults()
	o2.loadFile = path
	buf.Reset()
	if err := study(&buf, o2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "of measured") {
		t.Errorf("loaded-trace summary missing: %s", buf.String())
	}
}

func TestStudyErrors(t *testing.T) {
	bad := defaults()
	bad.schedule = "chaotic"
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("unknown schedule should fail")
	}
	bad = defaults()
	bad.analysis = "psychic"
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("unknown analysis should fail")
	}
	bad = defaults()
	bad.loop = 99
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("unknown kernel should fail")
	}
	bad = defaults()
	bad.loadFile = "/nonexistent/trace.txt"
	if err := study(&bytes.Buffer{}, bad); err == nil {
		t.Error("missing trace file should fail")
	}
}

func TestStudySVGExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "timeline.svg")
	o := defaults()
	o.quiet = true
	o.svgFile = path
	if err := study(&bytes.Buffer{}, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("not an SVG: %q", data[:20])
	}
}
