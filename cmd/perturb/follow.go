package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"perturb"
	"perturb/internal/obs"
)

// followStudy is the -follow pipeline: tail a growing trace file through
// a streaming analysis session. Windows print as the producer writes
// events; once the file has been quiet for -follow-idle the session
// closes and the summary line — identical to what a batch analysis of the
// finished file would compute — is printed.
func followStudy(w io.Writer, o options) error {
	defer obs.StartSpan("pipeline.follow").End()

	cfg := perturb.Alliant()
	cfg.Procs = o.procs
	ovh := perturb.PaperOverheads()
	if o.probe > 0 {
		ovh = perturb.UniformOverheads(perturb.Time(o.probe.Nanoseconds()))
	}
	cal := perturb.ExactCalibration(ovh, cfg)

	f, err := os.Open(o.followFile)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := perturb.NewTraceReader(&tailReader{f: f, idle: o.followIdle})
	if err != nil {
		return fmt.Errorf("following %s: %w", o.followFile, err)
	}

	opts := perturb.StreamOptions{
		Repair: o.repair,
		Procs:  tr.Procs(),
		Window: perturb.Time(o.window.Nanoseconds()),
		Slide:  perturb.Time(o.slide.Nanoseconds()),
	}
	switch strings.ToLower(o.analysis) {
	case "event":
		opts.Mode = perturb.EventBased
	case "time":
		opts.Mode = perturb.TimeBased
	default:
		return fmt.Errorf("analysis %q cannot run incrementally (use event or time)", o.analysis)
	}
	sa, err := perturb.NewStreamAnalyzer(cal, opts)
	if err != nil {
		return err
	}

	ctx := context.Background()
	events := 0
	var maxTM perturb.Time
	batch := make([]perturb.Event, 4096)
	for {
		n, rerr := tr.Read(batch)
		if n > 0 {
			events += n
			for _, e := range batch[:n] {
				if e.Time > maxTM {
					maxTM = e.Time
				}
			}
			if err := sa.Feed(ctx, batch[:n]); err != nil {
				return err
			}
			printWindows(w, sa, o.quiet)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("following %s: %w", o.followFile, rerr)
		}
	}
	approx, err := sa.Close(ctx)
	if err != nil {
		return err
	}
	printWindows(w, sa, o.quiet)

	mdur := time.Duration(maxTM) * time.Nanosecond
	adur := time.Duration(approx.Duration) * time.Nanosecond
	ratio := 0.0
	if maxTM > 0 {
		ratio = float64(approx.Duration) / float64(maxTM)
	}
	fmt.Fprintf(w, "%s: events %d  measured %v  approximated %v (%.3fx of measured)\n",
		o.followFile, events, mdur, adur, ratio)
	if o.quiet {
		return nil
	}
	fmt.Fprintf(w, "waits kept %d, removed %d, introduced %d\n",
		approx.WaitsKept, approx.WaitsRemoved, approx.WaitsIntroduced)
	if approx.Repair != nil {
		fmt.Fprintf(w, "repair: %s\n", approx.Repair.Summary())
	}
	return nil
}

// printWindows drains the session's finished windows to the report.
func printWindows(w io.Writer, sa *perturb.StreamAnalyzer, quiet bool) {
	for win := range sa.Results() {
		if quiet {
			continue
		}
		fmt.Fprintf(w, "window %d [%v, %v): events %d  procs %d  waiting %v  parallelism %.2f\n",
			win.Index, time.Duration(win.Start), time.Duration(win.End),
			win.Events, win.ActiveProcs, time.Duration(win.Waiting), win.AvgParallelism)
	}
}

// tailReader adapts a growing file to io.Reader: EOF from the file means
// "no new data yet", so reads poll until bytes arrive or the file has
// been idle for the timeout, which ends the stream. A codec read that
// spans a partially-written record simply blocks here until the producer
// finishes the record.
type tailReader struct {
	f    *os.File
	idle time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	poll := t.idle / 40
	if poll < time.Millisecond {
		poll = time.Millisecond
	} else if poll > 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	deadline := time.Now().Add(t.idle)
	for {
		n, err := t.f.Read(p)
		if n > 0 {
			// Swallow a trailing EOF: the next call polls for growth.
			return n, nil
		}
		if err != io.EOF {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, io.EOF
		}
		time.Sleep(poll)
	}
}
