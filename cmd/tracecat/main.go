// Command tracecat inspects trace files: it prints summaries, converts
// between the text, binary and columnar codecs, filters by processor or
// kind, validates structural invariants, and audits or repairs damaged
// traces.
//
// Usage:
//
//	tracecat [-summary] [-validate] [-audit] [-repair] [-proc N] [-kind K] [-o FILE [-format text|binary|columnar]] FILE
//
// The input format (text, binary or columnar) is auto-detected; -format
// picks the -o output codec (-binary remains as a deprecated synonym for
// -format binary). Columnar input with -proc/-kind filters decodes only
// the blocks whose index can match, skipping the rest. -audit classifies
// the trace's defects without modifying it; -repair sanitizes the trace
// before any other processing, so `-repair -o FILE` round-trips a damaged
// trace into a clean one.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"perturb"
	"perturb/internal/buildinfo"
)

type options struct {
	summary  bool
	validate bool
	audit    bool
	repair   bool
	proc     int
	kind     string
	out      string
	binary   bool
	format   string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecat: ")

	var o options
	flag.BoolVar(&o.summary, "summary", false, "print a summary instead of events")
	flag.BoolVar(&o.validate, "validate", false, "validate the trace and exit")
	flag.BoolVar(&o.audit, "audit", false, "classify the trace's defects and exit")
	flag.BoolVar(&o.repair, "repair", false, "sanitize the trace before other processing")
	flag.IntVar(&o.proc, "proc", -1, "only events of this processor")
	flag.StringVar(&o.kind, "kind", "", "only events of this kind (e.g. advance, awaitB)")
	flag.StringVar(&o.out, "o", "", "write the (filtered) trace to FILE")
	flag.BoolVar(&o.binary, "binary", false, "write -o output in the binary codec (deprecated: use -format binary)")
	flag.StringVar(&o.format, "format", "", "codec for -o output: text, binary or columnar (default text)")
	version := flag.Bool("version", false, "print build and version information and exit")
	flag.Parse()
	if *version {
		buildinfo.Resolve().Print(os.Stdout, "tracecat")
		return
	}
	if err := validateOptions(o, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "tracecat: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, o, flag.Arg(0)); err != nil {
		log.Fatal(err)
	}
}

// validateOptions rejects unusable flag combinations before the trace is
// read; main reports the error with usage and exits non-zero.
func validateOptions(o options, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one trace FILE argument, got %d", len(args))
	}
	if (o.binary || o.format != "") && o.out == "" {
		return fmt.Errorf("-format/-binary select the codec for -o output and require -o FILE")
	}
	switch o.format {
	case "", "text", "binary", "columnar":
	default:
		return fmt.Errorf("unknown -format %q (want text, binary or columnar)", o.format)
	}
	if o.binary && o.format != "" && o.format != "binary" {
		return fmt.Errorf("-binary conflicts with -format %s", o.format)
	}
	if o.audit && o.repair {
		return fmt.Errorf("-audit classifies without modifying; it cannot be combined with -repair")
	}
	if o.proc < -1 {
		return fmt.Errorf("-proc must be a processor number or -1 (no filter), got %d", o.proc)
	}
	if o.kind != "" && !knownKind(o.kind) {
		return fmt.Errorf("unknown event kind %q (e.g. compute, advance, awaitB)", o.kind)
	}
	return nil
}

// knownKind reports whether name is one of the defined event kinds.
func knownKind(name string) bool {
	for k := perturb.Kind(0); k.Valid(); k++ {
		if k.String() == name {
			return true
		}
	}
	return false
}

func run(w io.Writer, o options, path string) error {
	tr, err := readAuto(path, pushdown(o))
	if err != nil {
		return err
	}

	if o.audit {
		defects := perturb.AuditTrace(tr)
		if len(defects) == 0 {
			_, err := fmt.Fprintln(w, "clean")
			return err
		}
		for _, d := range defects {
			if _, err := fmt.Fprintln(w, d); err != nil {
				return err
			}
		}
		return nil
	}

	if o.repair {
		repaired, rep := perturb.RepairTrace(tr)
		tr = repaired
		if _, err := fmt.Fprintf(os.Stderr, "tracecat: repair: %s\n", rep.Summary()); err != nil {
			return err
		}
	}

	if o.proc >= 0 || o.kind != "" {
		tr = tr.Filter(func(e perturb.Event) bool {
			if o.proc >= 0 && e.Proc != o.proc {
				return false
			}
			if o.kind != "" && e.Kind.String() != o.kind {
				return false
			}
			return true
		})
	}

	if o.validate {
		if err := tr.Validate(); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w, "ok")
		return err
	}

	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		switch {
		case o.binary || o.format == "binary":
			err = tr.WriteBinary(f)
		case o.format == "columnar":
			err = tr.WriteColumnar(f)
		default:
			err = tr.WriteText(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}

	if o.summary {
		return printSummary(w, tr)
	}
	return tr.WriteText(w)
}

// pushdown derives the block filter the -proc/-kind row filters imply.
// It only applies when the row filter is the next processing step:
// -repair and -audit must see the whole trace, so they disable it. The
// filter is block-granular; run's row filter still drops the non-matching
// events of surviving blocks.
func pushdown(o options) perturb.TraceBlockFilter {
	var f perturb.TraceBlockFilter
	if o.repair || o.audit {
		return f
	}
	if o.proc >= 0 {
		f.Procs = []int{o.proc}
	}
	if o.kind != "" {
		if k, ok := kindNamed(o.kind); ok {
			f.Kinds = []perturb.Kind{k}
		}
	}
	return f
}

// kindNamed resolves a kind name, mirroring knownKind.
func kindNamed(name string) (perturb.Kind, bool) {
	for k := perturb.Kind(0); k.Valid(); k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// readAuto decodes the file as a stream (codec auto-detected from the
// first bytes), never holding the raw encoding in memory alongside the
// decoded events. On columnar input the block filter skips blocks whose
// index proves they hold nothing the row filters keep.
func readAuto(path string, f perturb.TraceBlockFilter) (*perturb.Trace, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	r, err := perturb.NewFilteredTraceReader(in, f)
	if err != nil {
		return nil, err
	}
	return perturb.ReadTrace(r)
}

func printSummary(w io.Writer, tr *perturb.Trace) error {
	fmt.Fprintf(w, "events:   %d\n", tr.Len())
	fmt.Fprintf(w, "procs:    %d\n", tr.Procs)
	fmt.Fprintf(w, "span:     %v .. %v (duration %v)\n",
		time.Duration(tr.Start()), time.Duration(tr.End()), time.Duration(tr.Duration()))
	kinds := map[perturb.Kind]int{}
	perProc := make([]int, tr.Procs)
	for _, e := range tr.Events {
		kinds[e.Kind]++
		if e.Proc >= 0 && e.Proc < tr.Procs {
			perProc[e.Proc]++
		}
	}
	fmt.Fprintln(w, "by kind:")
	for k := perturb.Kind(0); int(k) < 16; k++ {
		if n, ok := kinds[k]; ok {
			fmt.Fprintf(w, "  %-16s %d\n", k, n)
		}
	}
	fmt.Fprintln(w, "by proc:")
	for p, n := range perProc {
		fmt.Fprintf(w, "  proc %-3d %d\n", p, n)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(w, "validate: FAILED: %v\n", err)
	} else {
		fmt.Fprintln(w, "validate: ok")
	}
	return nil
}
