package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perturb"
)

// writeSample simulates a small loop and writes its trace in both codecs.
func writeSample(t *testing.T) (textPath, binPath string) {
	t.Helper()
	loop := perturb.NewLoop("sample", perturb.DOACROSS, 16).
		Compute("w", perturb.Microsecond).
		CriticalBegin(0).
		Compute("c", perturb.Microsecond/2).
		CriticalEnd(0).
		Loop()
	res, err := perturb.Simulate(loop, perturb.NoInstrumentation(), perturb.Alliant())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	textPath = filepath.Join(dir, "t.trace")
	binPath = filepath.Join(dir, "b.trace")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteText(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f, err = os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return textPath, binPath
}

func TestSummaryBothFormats(t *testing.T) {
	textPath, binPath := writeSample(t)
	for _, path := range []string{textPath, binPath} {
		var buf bytes.Buffer
		if err := run(&buf, options{summary: true, proc: -1}, path); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out := buf.String()
		for _, want := range []string{"events:", "by kind:", "advance", "validate: ok"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: summary lacks %q:\n%s", path, want, out)
			}
		}
	}
}

func TestValidateFlag(t *testing.T) {
	textPath, _ := writeSample(t)
	var buf bytes.Buffer
	if err := run(&buf, options{validate: true, proc: -1}, textPath); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "ok" {
		t.Errorf("validate output = %q", buf.String())
	}
}

func TestFilterAndConvert(t *testing.T) {
	textPath, _ := writeSample(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "adv.trace")
	var buf bytes.Buffer
	if err := run(&buf, options{kind: "advance", proc: -1, out: out, binary: true}, textPath); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := perturb.ReadTraceBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 16 {
		t.Errorf("filtered events = %d, want 16 advances", tr.Len())
	}
	for _, e := range tr.Events {
		if e.Kind != perturb.KindAdvance {
			t.Fatalf("unexpected event %v", e)
		}
	}
}

func TestDumpText(t *testing.T) {
	_, binPath := writeSample(t)
	var buf bytes.Buffer
	if err := run(&buf, options{proc: 0}, binPath); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# perturb-trace v1") {
		t.Errorf("dump is not text format: %q", buf.String()[:40])
	}
	for _, line := range strings.Split(buf.String(), "\n")[1:] {
		if line != "" && !strings.Contains(line, " p0 ") {
			t.Fatalf("non-proc-0 event leaked: %q", line)
		}
	}
}

func TestValidateOptions(t *testing.T) {
	good := options{proc: -1}
	if err := validateOptions(good, []string{"trace.txt"}); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
	cases := []struct {
		name string
		o    options
		args []string
	}{
		{"no file", options{proc: -1}, nil},
		{"two files", options{proc: -1}, []string{"a", "b"}},
		{"binary without -o", options{proc: -1, binary: true}, []string{"a"}},
		{"proc below -1", options{proc: -2}, []string{"a"}},
		{"unknown kind", options{proc: -1, kind: "teleport"}, []string{"a"}},
	}
	for _, tc := range cases {
		if err := validateOptions(tc.o, tc.args); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	for _, kind := range []string{"compute", "advance", "awaitB", "barrier-arrive", "lock-rel"} {
		if err := validateOptions(options{proc: -1, kind: kind}, []string{"a"}); err != nil {
			t.Errorf("kind %q rejected: %v", kind, err)
		}
	}
}

func TestMissingFile(t *testing.T) {
	if err := run(&bytes.Buffer{}, options{proc: -1}, "/nonexistent"); err == nil {
		t.Error("missing file should fail")
	}
}
