package main

import (
	"bytes"
	"strings"
	"testing"

	"perturb/internal/experiments"
)

func TestRunSelectsExperiments(t *testing.T) {
	env := experiments.ExactEnv()
	cases := map[string]string{
		"fig1":   "Figure 1",
		"table1": "Table 1",
		"table2": "Table 2",
		"table3": "Table 3",
		"fig4":   "Figure 4",
		"fig5":   "Figure 5",
	}
	for which, want := range cases {
		var buf bytes.Buffer
		if err := run(&buf, which, env); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s: output lacks %q", which, want)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bogus", experiments.ExactEnv()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunExtensionExperiments(t *testing.T) {
	env := experiments.ExactEnv()
	cases := map[string]string{
		"timing":   "Per-event",
		"vector":   "vector",
		"scaling":  "scaling of LL3",
		"ablation": "Ablation",
	}
	for which, want := range cases {
		var buf bytes.Buffer
		if err := run(&buf, which, env); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s: output lacks %q", which, want)
		}
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(1, 8, nil); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	cases := []struct {
		name           string
		workers, noise int
		args           []string
	}{
		{"zero workers", 0, 8, nil},
		{"negative workers", -3, 8, nil},
		{"negative noise", 1, -1, nil},
		{"extra args", 1, 8, []string{"stray"}},
	}
	for _, tc := range cases {
		if err := validateFlags(tc.workers, tc.noise, tc.args); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestRunSelfPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock audit skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, "selfperturb", experiments.ExactEnv()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Self-perturbation audit") {
		t.Errorf("selfperturb output unexpected:\n%s", buf.String())
	}
}

func TestRunAllExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", experiments.ExactEnv()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("all: output incomplete")
	}
}
