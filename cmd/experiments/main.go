// Command experiments regenerates the paper's evaluation: Figure 1,
// Tables 1-3 and Figures 4-5, printing each with the paper's values
// alongside for comparison.
//
// Usage:
//
//	experiments [-run all|fig1|table1|table2|table3|fig4|fig5|ablation|faults|selfperturb|selftrace] [-noise N] [-exact] [-workers N]
//
// -noise sets the calibration error in per mille (default 8, the
// paper-scale environment); -exact forces perfect calibration; -workers
// runs independent simulations concurrently on up to N goroutines
// (default 1, serial). The output is byte-identical for any worker
// count — only the wall-clock time changes.
//
// -run selfperturb and -run selftrace are the exceptions: selfperturb
// audits the toolchain's own telemetry overhead, selftrace drives a live
// in-process perturbd with the span recorder attached and analyzes the
// service's own exported trace. Both print wall-clock times, so neither
// is part of -run all or the Markdown report.
//
// -stats prints the obs telemetry snapshot (human summary followed by one
// JSON line) to stderr after the run; -debug-addr serves expvar and pprof
// while the experiments execute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"perturb/internal/buildinfo"
	"perturb/internal/experiments"
	"perturb/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	which := flag.String("run", "all", "experiment to run: all, fig1, table1, table2, table3, fig4, fig5, timing, vector, locks, scaling, ablation, faults, selfperturb, selftrace")
	noise := flag.Int("noise", 8, "calibration error in per mille")
	exact := flag.Bool("exact", false, "use exact calibration (overrides -noise)")
	markdown := flag.Bool("markdown", false, "emit the full evaluation as a Markdown report")
	workers := flag.Int("workers", 1, "run independent simulations on up to N goroutines")
	stats := flag.Bool("stats", false, "print telemetry statistics (human summary + one JSON line) to stderr")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print build and version information and exit")
	flag.Parse()

	if *version {
		buildinfo.Resolve().Print(os.Stdout, "experiments")
		return
	}

	if err := validateFlags(*workers, *noise, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *stats {
		obs.Reset()
		obs.SetEnabled(true)
	}
	if *debugAddr != "" {
		obs.SetEnabled(true)
		d, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		log.Printf("debug server on http://%s/debug/vars (pprof under /debug/pprof/)", d.Addr())
	}

	env := experiments.PaperEnv()
	env.CalNoisePerMille = *noise
	if *exact {
		env.CalNoisePerMille = 0
	}
	env = env.WithWorkers(*workers)

	if *markdown {
		if err := experiments.WriteMarkdownReport(os.Stdout, env); err != nil {
			log.Fatal(err)
		}
	} else if err := run(os.Stdout, *which, env); err != nil {
		log.Fatal(err)
	}

	if *stats {
		snap := obs.Snapshot()
		if err := snap.WriteText(os.Stderr); err != nil {
			log.Fatal(err)
		}
		if err := json.NewEncoder(os.Stderr).Encode(snap); err != nil {
			log.Fatal(err)
		}
	}
}

// validateFlags rejects unusable flag values before any experiment runs;
// main reports the error with usage and exits non-zero.
func validateFlags(workers, noise int, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(args, " "))
	}
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	if noise < 0 {
		return fmt.Errorf("-noise must not be negative, got %d", noise)
	}
	return nil
}

type renderer interface{ Render(io.Writer) error }

func run(w io.Writer, which string, env experiments.Env) error {
	one := func(f func(experiments.Env) (renderer, error)) error {
		r, err := f(env)
		if err != nil {
			return err
		}
		return r.Render(w)
	}
	switch which {
	case "all":
		return experiments.RunAll(w, env)
	case "fig1":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Figure1(e) })
	case "table1":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Table1(e) })
	case "table2":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Table2(e) })
	case "table3":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Table3(e) })
	case "fig4":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Figure4(e) })
	case "fig5":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Figure5(e) })
	case "timing":
		return one(func(e experiments.Env) (renderer, error) { return experiments.EventTiming(e) })
	case "vector":
		return one(func(e experiments.Env) (renderer, error) { return experiments.ScalarVector(e) })
	case "locks":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Locks(e) })
	case "scaling":
		for _, n := range []int{3, 4, 17} {
			res, err := experiments.Scaling(env, n, nil)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	case "ablation":
		for _, f := range []func(experiments.Env, int) (*experiments.AblationResult, error){
			experiments.AblationProbeCost,
			experiments.AblationCoverage,
			experiments.AblationCalibration,
		} {
			res, err := f(env, 17)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	case "faults":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Faults(e) })
	case "selfperturb":
		// The audit toggles the telemetry layer itself, so it runs on the
		// benchmark workload rather than through env; see SelfPerturb.
		res, err := experiments.SelfPerturb(8, 250_000, 5)
		if err != nil {
			return err
		}
		return res.Render(w)
	case "selftrace":
		// The dogfooded study drives a live in-process perturbd and reports
		// wall-clock times, so like selfperturb it is not part of -run all.
		res, err := experiments.SelfTrace(experiments.SelfTraceConfig{})
		if err != nil {
			return err
		}
		return res.Render(w)
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
}
