// Command experiments regenerates the paper's evaluation: Figure 1,
// Tables 1-3 and Figures 4-5, printing each with the paper's values
// alongside for comparison.
//
// Usage:
//
//	experiments [-run all|fig1|table1|table2|table3|fig4|fig5|ablation] [-noise N] [-exact] [-workers N]
//
// -noise sets the calibration error in per mille (default 8, the
// paper-scale environment); -exact forces perfect calibration; -workers
// runs independent simulations concurrently on up to N goroutines
// (default 1, serial). The output is byte-identical for any worker
// count — only the wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"perturb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	which := flag.String("run", "all", "experiment to run: all, fig1, table1, table2, table3, fig4, fig5, timing, vector, locks, scaling, ablation")
	noise := flag.Int("noise", 8, "calibration error in per mille")
	exact := flag.Bool("exact", false, "use exact calibration (overrides -noise)")
	markdown := flag.Bool("markdown", false, "emit the full evaluation as a Markdown report")
	workers := flag.Int("workers", 1, "run independent simulations on up to N goroutines")
	flag.Parse()

	env := experiments.PaperEnv()
	env.CalNoisePerMille = *noise
	if *exact {
		env.CalNoisePerMille = 0
	}
	env = env.WithWorkers(*workers)

	if *markdown {
		if err := experiments.WriteMarkdownReport(os.Stdout, env); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(os.Stdout, *which, env); err != nil {
		log.Fatal(err)
	}
}

type renderer interface{ Render(io.Writer) error }

func run(w io.Writer, which string, env experiments.Env) error {
	one := func(f func(experiments.Env) (renderer, error)) error {
		r, err := f(env)
		if err != nil {
			return err
		}
		return r.Render(w)
	}
	switch which {
	case "all":
		return experiments.RunAll(w, env)
	case "fig1":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Figure1(e) })
	case "table1":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Table1(e) })
	case "table2":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Table2(e) })
	case "table3":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Table3(e) })
	case "fig4":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Figure4(e) })
	case "fig5":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Figure5(e) })
	case "timing":
		return one(func(e experiments.Env) (renderer, error) { return experiments.EventTiming(e) })
	case "vector":
		return one(func(e experiments.Env) (renderer, error) { return experiments.ScalarVector(e) })
	case "locks":
		return one(func(e experiments.Env) (renderer, error) { return experiments.Locks(e) })
	case "scaling":
		for _, n := range []int{3, 4, 17} {
			res, err := experiments.Scaling(env, n, nil)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	case "ablation":
		for _, f := range []func(experiments.Env, int) (*experiments.AblationResult, error){
			experiments.AblationProbeCost,
			experiments.AblationCoverage,
			experiments.AblationCalibration,
		} {
			res, err := f(env, 17)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", which)
	}
}
