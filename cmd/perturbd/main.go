// Command perturbd serves the perturbation analysis over HTTP.
//
// Usage:
//
//	perturbd [-addr A] [-max-concurrency N] [-queue N] [-timeout D]
//	         [-drain-timeout D] [-max-body N] [-cache-bytes N] [-debug-addr A]
//	         [-selftrace FILE] [-request-log FILE] [-version]
//
// POST a trace (any codec, auto-detected) to /v1/analyze and the response
// is the approximation as JSON; query parameters select the analysis (see
// the README's "Running as a service" and docs/http-api.md). POST to
// /v1/analyze/stream and windowed results stream back as NDJSON while the
// upload is still in flight, closing with the batch-identical summary.
// The unversioned /analyze path is a deprecated alias for /v1/analyze and
// answers with a Deprecation header. /healthz reports liveness,
// /readyz readiness. -debug-addr serves expvar and pprof on a second
// listener, including the server.* admission counters and the cache.*
// hit/miss/eviction counters.
//
// Results are cached content-addressed (-cache-bytes budget, default
// 256 MiB; 0 disables): a re-upload of an already-analyzed trace with the
// same analysis parameters is served from memory, concurrent identical
// uploads coalesce onto one analysis, and cached responses carry
// "cached": true plus the input's content address as input_sha256. With
// the cache disabled the wire format is exactly the pre-cache one.
//
// Load beyond -max-concurrency running plus -queue waiting requests is
// shed with 429 and a Retry-After hint. SIGTERM or SIGINT drains: the
// listener closes, in-flight analyses get -drain-timeout to finish and
// are then cancelled cooperatively; the process exits 0 on a clean or
// forced drain.
//
// The service can trace itself: with -selftrace FILE every request's
// phases, queue waits and singleflight waits are recorded as spans and
// written at shutdown as an event trace in the columnar codec — a trace
// `perturb -load` analyzes like any other subject program. The live
// recorder is also downloadable from /debug/selftrace on the service
// address. /metrics serves the telemetry snapshot in the Prometheus text
// exposition format; -request-log FILE ("-" for stderr) writes one JSON
// line per request with trace id, status, cache outcome and latency.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perturb"
	"perturb/internal/buildinfo"
	"perturb/internal/obs"
	"perturb/internal/selftrace"
	"perturb/internal/server"
)

type options struct {
	addr         string
	maxConc      int
	queue        int
	timeout      time.Duration
	drainTimeout time.Duration
	maxBody      int64
	memoryBudget int64
	cacheBytes   int64
	debugAddr    string
	selftrace    string
	requestLog   string
	version      bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("perturbd: ")

	var o options
	flag.StringVar(&o.addr, "addr", "localhost:7077", "listen address for the analysis service")
	flag.IntVar(&o.maxConc, "max-concurrency", 0, "analyses running at once (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 0, "admitted requests that may wait for a slot (0 = 2×max-concurrency)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request deadline, body read included")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	flag.Int64Var(&o.maxBody, "max-body", 64<<20, "largest accepted trace body in bytes")
	flag.Int64Var(&o.memoryBudget, "memory-budget", 0, "uploads larger than this run the low-memory streaming engine and return a summary-only degraded result (0 = never degrade)")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", server.DefaultCacheBytes, "result cache budget in bytes (0 disables caching)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	flag.StringVar(&o.selftrace, "selftrace", "", "record request spans and write them as a columnar event trace to this file at shutdown")
	flag.StringVar(&o.requestLog, "request-log", "", "write one JSON line per request to this file (\"-\" = stderr)")
	flag.BoolVar(&o.version, "version", false, "print build and version information and exit")
	flag.Parse()

	if o.version {
		buildinfo.Resolve().Print(os.Stdout, "perturbd")
		return
	}

	if err := validateOptions(o, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "perturbd: %v\n\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

// validateOptions rejects unusable flag combinations before any socket is
// opened; main reports the error with usage and exits non-zero.
func validateOptions(o options, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(args, " "))
	}
	if o.addr == "" {
		return fmt.Errorf("-addr must name a listen address")
	}
	if _, _, err := net.SplitHostPort(o.addr); err != nil {
		return fmt.Errorf("-addr %q is not host:port: %v", o.addr, err)
	}
	if o.maxConc < 0 {
		return fmt.Errorf("-max-concurrency must be >= 0 (0 = GOMAXPROCS), got %d", o.maxConc)
	}
	if o.queue < 0 {
		return fmt.Errorf("-queue must be >= 0 (0 = 2×max-concurrency), got %d", o.queue)
	}
	if o.timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", o.timeout)
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", o.drainTimeout)
	}
	if o.maxBody <= 0 {
		return fmt.Errorf("-max-body must be positive, got %d", o.maxBody)
	}
	if o.memoryBudget < 0 {
		return fmt.Errorf("-memory-budget must be >= 0 (0 = never degrade), got %d", o.memoryBudget)
	}
	if o.cacheBytes < 0 {
		return fmt.Errorf("-cache-bytes must be >= 0 (0 disables caching), got %d", o.cacheBytes)
	}
	if o.debugAddr != "" {
		if _, _, err := net.SplitHostPort(o.debugAddr); err != nil {
			return fmt.Errorf("-debug-addr %q is not host:port: %v", o.debugAddr, err)
		}
	}
	return nil
}

func run(o options) error {
	// /metrics renders the obs snapshot, so the service always records
	// its own telemetry (the gated-counter overhead is within the obs
	// budget and changes no response bytes).
	perturb.EnableObservability(true)
	if o.debugAddr != "" {
		d, err := perturb.ServeDebug(o.debugAddr)
		if err != nil {
			return err
		}
		defer d.Close()
		log.Printf("debug server on http://%s/debug/vars (pprof under /debug/pprof/)", d.Addr())
	}

	var recorder *obs.Recorder
	if o.selftrace != "" {
		recorder = obs.NewRecorder(0)
	}
	var requestLog io.Writer
	switch o.requestLog {
	case "":
	case "-":
		requestLog = os.Stderr
	default:
		f, err := os.Create(o.requestLog)
		if err != nil {
			return err
		}
		defer f.Close()
		requestLog = f
	}

	// Flag semantics: 0 disables the cache. Config semantics: 0 means the
	// default budget, negative disables — so the flag's 0 maps to -1.
	cacheBytes := o.cacheBytes
	if cacheBytes == 0 {
		cacheBytes = -1
	}
	srv := server.New(server.Config{
		MaxConcurrency:    o.maxConc,
		QueueDepth:        o.queue,
		RequestTimeout:    o.timeout,
		MaxBodyBytes:      o.maxBody,
		MemoryBudgetBytes: o.memoryBudget,
		CacheBytes:        cacheBytes,
		Logger:            log.Default(),
		Recorder:          recorder,
		RequestLog:        requestLog,
	})

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	log.Printf("serving analysis on http://%s/v1/analyze (streaming at /v1/analyze/stream)", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("received %v, draining (grace %v)", s, o.drainTimeout)
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	forced, err := srv.Shutdown(ctx)
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-serveErr
	if forced {
		log.Print("drain deadline passed, in-flight requests cancelled")
	} else {
		log.Print("drained cleanly")
	}
	if recorder != nil {
		if err := selftrace.WriteFile(recorder, o.selftrace); err != nil {
			return fmt.Errorf("writing self-trace: %w", err)
		}
		log.Printf("self-trace written to %s (%d procs, %d dropped)",
			o.selftrace, recorder.Procs(), recorder.Dropped())
	}
	return nil
}
