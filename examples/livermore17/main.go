// Livermore loop 17 case study: reproduce the paper's §5 analysis for the
// implicit-conditional-computation kernel — execution-time ratios,
// per-processor waiting (Table 3), the waiting timeline (Figure 4) and the
// parallelism profile (Figure 5) — all derived from the event-based
// approximation of a heavily instrumented run.
//
// Run with: go run ./examples/livermore17
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"perturb"
	"perturb/internal/textplot"
)

func main() {
	log.SetFlags(0)

	loop, err := perturb.LivermoreLoop(17)
	if err != nil {
		log.Fatal(err)
	}
	cfg := perturb.Alliant()
	ovh := perturb.PaperOverheads()
	cal := perturb.ExactCalibration(ovh, cfg)

	actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Livermore loop 17 (%s)\n", loop.Name)
	fmt.Printf("  actual       %v\n", time.Duration(actual.Duration))
	fmt.Printf("  measured     %v  (%.2fx slowdown — the paper saw 14.08x)\n",
		time.Duration(measured.Duration), float64(measured.Duration)/float64(actual.Duration))
	fmt.Printf("  approximated %v  (%.3fx of actual — the paper saw 0.97)\n\n",
		time.Duration(approx.Duration), float64(approx.Duration)/float64(actual.Duration))

	// Table 3: per-processor waiting in the approximated execution.
	ws, err := perturb.Waiting(approx.Trace, cal)
	if err != nil {
		log.Fatal(err)
	}
	pct := perturb.WaitingPercent(ws, approx.Duration)
	fmt.Println("waiting time per processor (approximated execution):")
	for p, v := range pct {
		fmt.Printf("  processor %d: %5.2f%%\n", p, v)
	}

	// Figure 4: waiting timeline.
	tl, err := perturb.Timeline(approx.Trace, cal)
	if err != nil {
		log.Fatal(err)
	}
	lanes := make([]textplot.Lane, len(tl))
	for p, ivs := range tl {
		lanes[p].Label = fmt.Sprintf("Processor %d", p)
		for _, iv := range ivs {
			lanes[p].Spans = append(lanes[p].Spans,
				textplot.Span{Start: iv.Start, End: iv.End, Waiting: iv.Waiting})
		}
	}
	fmt.Println()
	if err := textplot.Gantt(os.Stdout, "approximated waiting behaviour",
		lanes, 0, approx.Duration, 96); err != nil {
		log.Fatal(err)
	}

	// Figure 5: parallelism profile.
	prof, err := perturb.Parallelism(approx.Trace, cal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := textplot.StepCurve(os.Stdout, "approximated parallelism",
		prof.Times, prof.Level, 0, approx.Duration, 96, cfg.Procs); err != nil {
		log.Fatal(err)
	}
	var loopBegin, release perturb.Time = -1, -1
	for _, e := range approx.Trace.Events {
		switch e.Kind {
		case perturb.KindLoopBegin:
			if loopBegin < 0 {
				loopBegin = e.Time
			}
		case perturb.KindBarrierRelease:
			release = e.Time
		}
	}
	fmt.Printf("average parallelism over the concurrent portion: %.2f (paper: 7.5)\n",
		prof.Average(loopBegin, release))
}
