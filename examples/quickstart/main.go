// Quickstart: build a DOACROSS loop model, measure it with intrusive
// instrumentation on the simulated machine, and recover the actual
// execution time with event-based perturbation analysis.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"perturb"
)

func main() {
	log.SetFlags(0)

	// A parallel loop in the shape the paper studies: independent work
	// per iteration, then a small update of shared state serialized
	// across iterations by advance/await synchronization (distance 1).
	loop := perturb.NewLoop("histogram update", perturb.DOACROSS, 512).
		Compute("bucket scan", 4*perturb.Microsecond).
		Compute("local tally", 2*perturb.Microsecond).
		CriticalBegin(0).
		Compute("shared histogram += tally", perturb.Microsecond).
		CriticalEnd(0).
		Loop()

	cfg := perturb.Alliant() // 8 processors, FX/80-flavoured costs

	// Ground truth: the uninstrumented execution.
	actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Measured: every statement and synchronization operation carries a
	// 5us trace probe — over 4x the cost of the statements themselves.
	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Analysis sees only the measured trace and the calibrated costs.
	cal := perturb.ExactCalibration(ovh, cfg)
	timeBased, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{Mode: perturb.TimeBased})
	if err != nil {
		log.Fatal(err)
	}
	eventBased, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(what string, d perturb.Time) {
		fmt.Printf("%-28s %10v   (%.2fx of actual)\n",
			what, time.Duration(d), float64(d)/float64(actual.Duration))
	}
	show("actual execution", actual.Duration)
	show("measured (instrumented)", measured.Duration)
	show("time-based approximation", timeBased.Duration)
	show("event-based approximation", eventBased.Duration)
	fmt.Printf("\nevent-based analysis kept %d waits, removed %d, introduced %d\n",
		eventBased.WaitsKept, eventBased.WaitsRemoved, eventBased.WaitsIntroduced)
}
