// Schedule what-if study: measure a DOACROSS loop once (under the default
// interleaved schedule, with heavy instrumentation) and use the liberal,
// reschedule-aware analysis to predict how the uninstrumented loop would
// behave under other scheduling disciplines — then check each prediction
// against the simulator's ground truth for that schedule.
//
// This is the work-reassignment capability the paper sketches in §4.2.3:
// conservative analysis must keep the measured iteration-to-processor
// mapping, but once per-iteration costs have been extracted from the
// trace, the scheduling discipline itself becomes an analysis input.
//
// Run with: go run ./examples/doacross
package main

import (
	"fmt"
	"log"
	"time"

	"perturb"
)

func main() {
	log.SetFlags(0)

	// An imbalanced DOACROSS loop: iteration costs vary several fold
	// (jitter), so the iteration-to-processor mapping matters.
	loop := perturb.NewLoop("imbalanced pipeline", perturb.DOACROSS, 256).
		ComputeJitter("stage work (data dependent)", 2*perturb.Microsecond, 6*perturb.Microsecond).
		Compute("pack result", perturb.Microsecond).
		CriticalBegin(0).
		Compute("commit to shared queue", perturb.Microsecond/2).
		CriticalEnd(0).
		Loop()

	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
	baseCfg := perturb.Alliant() // measured under the interleaved default
	cal := perturb.ExactCalibration(ovh, baseCfg)

	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), baseCfg)
	if err != nil {
		log.Fatal(err)
	}
	conservative, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured once under the interleaved schedule: %v (instrumented)\n",
		time.Duration(measured.Duration))
	fmt.Printf("conservative event-based approximation:       %v\n\n",
		time.Duration(conservative.Duration))

	fmt.Println("liberal analysis: predict each schedule from the one measurement")
	for _, sched := range []struct {
		name string
		s    perturb.Schedule
	}{
		{"interleaved", perturb.Interleaved},
		{"blocked", perturb.Blocked},
		{"dynamic", perturb.Dynamic},
	} {
		predicted, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{
			Mode: perturb.Liberal,
			Liberal: perturb.LiberalOptions{
				Procs:    baseCfg.Procs,
				Distance: loop.Distance,
				Schedule: sched.s,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Ground truth: simulate the uninstrumented loop under that
		// schedule.
		cfg := baseCfg
		cfg.Schedule = sched.s
		actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s predicted %10v   actual %10v   (%.3fx)\n",
			sched.name,
			time.Duration(predicted.Duration),
			time.Duration(actual.Duration),
			float64(predicted.Duration)/float64(actual.Duration))
	}
	fmt.Println("\nA single instrumented run plus liberal analysis ranks the")
	fmt.Println("schedules without ever running the uninstrumented loop.")
}
