// Real traces from real goroutines: run Livermore kernel 3 (inner
// product) as a DOACROSS loop over goroutines using the advance/await
// runtime, record a wall-clock trace, and apply event-based perturbation
// analysis to the real measurement.
//
// Unlike the simulator examples there is no exact ground truth here — the
// "actual" run is simply an untraced execution, subject to scheduler
// noise — so expect the approximation to land near the untraced time
// rather than exactly on it. This is the paper's situation: on real
// hardware, actual behaviour is only observable through its own
// disturbance.
//
// Run with: go run ./examples/goroutines
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"perturb"
	"perturb/internal/lfk"
	"perturb/internal/rt"
)

func main() {
	log.SetFlags(0)

	// Size the loop to the machine: more goroutines than cores just
	// measures scheduler time-slicing, not synchronization.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	if workers > 8 {
		workers = 8
	}
	const (
		strips = 512
		spin   = 400 // per-strip busy work multiplier
	)
	data := lfk.NewData()

	// The DOACROSS body: compute a strip partial product (independent
	// work), then fold it into the shared accumulator inside the
	// advance/await critical region.
	var q float64
	runOnce := func(tracer *rt.Tracer) time.Duration {
		q = 0
		cfg := rt.Config{Workers: workers, Iters: strips, Distance: 1, Tracer: tracer}
		t0 := time.Now()
		_, err := rt.Doacross(cfg, func(c *rt.Ctx) {
			per := (lfk.N1 + strips - 1) / strips
			lo, hi := c.Iter*per, (c.Iter+1)*per
			if hi > lfk.N1 {
				hi = lfk.N1
			}
			var partial float64
			for r := 0; r < spin; r++ {
				for k := lo; k < hi; k++ {
					partial += data.Z[k] * data.X[k]
				}
			}
			c.Step(0)
			c.CriticalBegin()
			q += partial
			c.CriticalEnd()
		})
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(t0)
	}

	// Warm up, then measure untraced and traced.
	runOnce(nil)
	untraced := runOnce(nil)
	tracer := rt.NewTracer(workers, 8*strips)
	traced := runOnce(tracer)
	tr := tracer.Trace()

	// Calibrate the probe and synchronization costs in vitro and analyze
	// the real trace.
	cal := rt.CalibrateSync(5)
	cal.Overheads = rt.Calibrate(7)
	approx, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ovh := cal.Overheads

	fmt.Printf("inner product over %d goroutines on %d core(s) (%d strips, checksum %.4e)\n",
		workers, runtime.GOMAXPROCS(0), strips, q/float64(spin))
	fmt.Printf("  untraced wall time:  %v\n", untraced)
	fmt.Printf("  traced wall time:    %v  (%d events, calibrated probe ~%v)\n",
		traced, tr.Len(), time.Duration(ovh.Event))
	fmt.Printf("  approximated time:   %v  (%.2fx of untraced)\n",
		time.Duration(approx.Duration),
		float64(approx.Duration)/float64(untraced.Nanoseconds()))
	fmt.Printf("  waits kept %d, removed %d, introduced %d\n",
		approx.WaitsKept, approx.WaitsRemoved, approx.WaitsIntroduced)
}
