// Ordered vs unordered critical sections: the same reduction built two
// ways — advance/await (iteration-ordered, the Alliant DOACROSS way) and a
// FIFO lock (order decided at run time) — measured under heavy
// instrumentation and recovered with event-based analysis.
//
// The lock version admits more schedules (any acquisition order), so the
// uninstrumented loop runs slightly faster; the advance/await version
// serializes in iteration order but gives the analysis a fully determined
// dependence structure. Event-based analysis recovers both, using the
// advance/await model for one and the semaphore (measured-acquisition-
// order) model for the other.
//
// Run with: go run ./examples/locks
package main

import (
	"fmt"
	"log"
	"time"

	"perturb"
)

func main() {
	log.SetFlags(0)

	const (
		iters = 256
		pre   = 3 * perturb.Microsecond
		crit  = 2 * perturb.Microsecond
	)

	ordered := perturb.NewLoop("reduction via advance/await", perturb.DOACROSS, iters).
		ComputeJitter("partial result", pre, 4*perturb.Microsecond).
		CriticalBegin(0).
		Compute("fold into accumulator", crit).
		CriticalEnd(0).
		Loop()

	unordered := perturb.NewLoop("reduction via lock", perturb.DOALL, iters).
		ComputeJitter("partial result", pre, 4*perturb.Microsecond).
		LockStmt(0).
		Compute("fold into accumulator", crit).
		UnlockStmt(0).
		Loop()

	cfg := perturb.Alliant()
	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
	cal := perturb.ExactCalibration(ovh, cfg)

	for _, tc := range []struct {
		name string
		loop *perturb.Loop
	}{
		{"advance/await (iteration order)", ordered},
		{"FIFO lock (request order)", unordered},
	} {
		actual, err := perturb.Simulate(tc.loop, perturb.NoInstrumentation(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		measured, err := perturb.Simulate(tc.loop, perturb.FullInstrumentation(ovh, true), cfg)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := perturb.CheckFeasible(measured.Trace, approx.Trace); err != nil {
			log.Fatalf("%s: approximation infeasible: %v", tc.name, err)
		}
		path, err := perturb.AnalyzeCriticalPath(approx.Trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", tc.name)
		fmt.Printf("  actual       %10v   (total waiting %v)\n",
			time.Duration(actual.Duration), time.Duration(actual.TotalWaiting()))
		fmt.Printf("  measured     %10v   (%.2fx)\n",
			time.Duration(measured.Duration),
			float64(measured.Duration)/float64(actual.Duration))
		fmt.Printf("  approximated %10v   (%.3fx of actual)\n",
			time.Duration(approx.Duration),
			float64(approx.Duration)/float64(actual.Duration))
		fmt.Printf("  critical path: %d steps, %.1f%% synchronization\n\n",
			len(path.Steps), 100*float64(path.SyncGap)/float64(path.Total))
	}
	fmt.Println("Both forms are recovered from 10x-perturbed measurements; the lock")
	fmt.Println("form is conservatively approximated in its measured acquisition order.")
}
