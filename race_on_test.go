//go:build race

package perturb_test

const raceEnabled = true
