package perturb_test

import (
	"fmt"

	"perturb"
)

// The canonical pipeline: build a DOACROSS loop, measure it intrusively,
// recover the actual behaviour from the perturbed trace. The simulator is
// deterministic, so the recovered ratio is exact.
func Example() {
	loop := perturb.NewLoop("example", perturb.DOACROSS, 256).
		Compute("independent work", 4*perturb.Microsecond).
		CriticalBegin(0).
		Compute("shared update", perturb.Microsecond).
		CriticalEnd(0).
		Loop()
	cfg := perturb.Alliant()

	actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
	if err != nil {
		panic(err)
	}
	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		panic(err)
	}
	approx, err := perturb.Analyze(measured.Trace, perturb.ExactCalibration(ovh, cfg),
		perturb.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("measured is %.1fx actual; event-based approximation is %.3fx actual\n",
		float64(measured.Duration)/float64(actual.Duration),
		float64(approx.Duration)/float64(actual.Duration))
	// Output:
	// measured is 9.8x actual; event-based approximation is 1.000x actual
}

// Time-based analysis cannot restore the waiting that instrumentation hid,
// so on a dependence-chained loop it underestimates (the paper's Table 1
// failure mode).
func ExampleAnalyze_timeBased() {
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		panic(err)
	}
	cfg := perturb.Alliant()
	actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
	if err != nil {
		panic(err)
	}
	ovh := perturb.PaperOverheads()
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, false), cfg)
	if err != nil {
		panic(err)
	}
	tb, err := perturb.Analyze(measured.Trace, perturb.ExactCalibration(ovh, cfg),
		perturb.AnalyzeOptions{Mode: perturb.TimeBased})
	if err != nil {
		panic(err)
	}
	fmt.Printf("time-based approximation of LL3: %.2fx of actual (paper: 0.37)\n",
		float64(tb.Duration)/float64(actual.Duration))
	// Output:
	// time-based approximation of LL3: 0.39x of actual (paper: 0.37)
}

// Traces damaged in the field — here, every fault class the injector
// models at once — still analyze with repair enabled: the sanitizer fixes
// what it can, the analysis degrades conservatively for the rest, and the
// result reports what happened.
func ExampleAnalyze_repair() {
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		panic(err)
	}
	cfg := perturb.Alliant()
	ovh := perturb.PaperOverheads()
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		panic(err)
	}

	damaged, _ := perturb.InjectFaults(measured.Trace, perturb.DropFaults(0.01, 1991))
	approx, err := perturb.Analyze(damaged, perturb.ExactCalibration(ovh, cfg),
		perturb.AnalyzeOptions{Repair: true})
	if err != nil {
		panic(err)
	}

	exact, err := perturb.Analyze(measured.Trace, perturb.ExactCalibration(ovh, cfg),
		perturb.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	worst := 1.0
	for _, c := range approx.Confidence {
		if c.Score < worst {
			worst = c.Score
		}
	}
	fmt.Printf("repaired %v\n", !approx.Repair.Clean())
	fmt.Printf("reconstruction within 5%%: %v (worst processor confidence %.3f)\n",
		float64(approx.Duration)/float64(exact.Duration) < 1.05 &&
			float64(approx.Duration)/float64(exact.Duration) > 0.95, worst)
	// Output:
	// repaired true
	// reconstruction within 5%: true (worst processor confidence 0.989)
}

// Waiting statistics come from the approximated execution, never the raw
// measurement (paper Table 3).
func ExampleWaiting() {
	loop, err := perturb.LivermoreLoop(17)
	if err != nil {
		panic(err)
	}
	cfg := perturb.Alliant()
	ovh := perturb.PaperOverheads()
	cal := perturb.ExactCalibration(ovh, cfg)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		panic(err)
	}
	approx, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	ws, err := perturb.Waiting(approx.Trace, cal)
	if err != nil {
		panic(err)
	}
	pct := perturb.WaitingPercent(ws, approx.Duration)
	fmt.Printf("processor 0 spends %.1f%% of LL17 waiting\n", pct[0])
	// Output:
	// processor 0 spends 4.8% of LL17 waiting
}
