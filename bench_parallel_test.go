package perturb_test

import (
	"fmt"
	"sync"
	"testing"

	"perturb"
)

// Million-event benchmarks for the sharded event-based engine against the
// sequential worklist fixpoint.
//
// The workload is a backward-wave DOACROSS: iteration i runs on processor
// P-1-(i mod P), so the cross-iteration dependency chain snakes against
// the fixpoint's processor scan order. The sequential analysis then
// resolves only one iteration per full pass — its worst case, with
// O(iterations x processors) blocked re-checks — while the sharded engine
// performs exactly one wakeup per dependency edge and merges the finished
// per-processor runs instead of re-sorting the whole trace.

const (
	benchProcs = 8
	benchIters = 250_000 // ~1M events at 4 events per iteration
)

var (
	bigOnce  sync.Once
	bigTrace *perturb.Trace
	bigCal   perturb.Calibration
)

// backwardWaveTrace builds the measured trace of the workload above.
func backwardWaveTrace(procs, iters int) *perturb.Trace {
	tr := perturb.NewTrace(procs)
	t := perturb.Time(0)
	next := func() perturb.Time { t += 10; return t }
	tr.Append(perturb.Event{Time: next(), Proc: 0, Stmt: -1, Kind: perturb.KindLoopBegin, Iter: -1, Var: -1})
	for i := 0; i < iters; i++ {
		p := procs - 1 - i%procs
		tr.Append(perturb.Event{Time: next(), Proc: p, Stmt: 1, Kind: perturb.KindAwaitB, Iter: i - 1, Var: 0})
		tr.Append(perturb.Event{Time: next(), Proc: p, Stmt: 1, Kind: perturb.KindAwaitE, Iter: i - 1, Var: 0})
		tr.Append(perturb.Event{Time: next(), Proc: p, Stmt: 2, Kind: perturb.KindCompute, Iter: i, Var: -1})
		tr.Append(perturb.Event{Time: next(), Proc: p, Stmt: 3, Kind: perturb.KindAdvance, Iter: i, Var: 0})
	}
	for p := 0; p < procs; p++ {
		tr.Append(perturb.Event{Time: next(), Proc: p, Stmt: -2, Kind: perturb.KindBarrierArrive, Iter: 0, Var: 0})
	}
	for p := 0; p < procs; p++ {
		tr.Append(perturb.Event{Time: next(), Proc: p, Stmt: -3, Kind: perturb.KindBarrierRelease, Iter: 0, Var: 0})
	}
	return tr
}

func bigBench(b *testing.B) (*perturb.Trace, perturb.Calibration) {
	b.Helper()
	bigOnce.Do(func() {
		bigTrace = backwardWaveTrace(benchProcs, benchIters)
		if err := bigTrace.Validate(); err != nil {
			panic(err)
		}
		bigCal = perturb.Calibration{
			Overheads: perturb.UniformOverheads(2),
			SNoWait:   5,
			SWait:     8,
			AdvanceOp: 3,
			Barrier:   4,
		}
	})
	return bigTrace, bigCal
}

func BenchmarkEventBasedMillionSequential(b *testing.B) {
	tr, cal := bigBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perturb.AnalyzeEventBased(tr, cal); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())/1e6, "Mevents")
}

func BenchmarkEventBasedMillionParallel(b *testing.B) {
	tr, cal := bigBench(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := perturb.AnalyzeEventBasedParallel(tr, cal, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Len())/1e6, "Mevents")
		})
	}
}

// BenchmarkEventBasedMillionEquivalence is a benchmark-shaped sanity
// check: the two engines agree on the million-event workload (cheap per
// iteration; the real verification lives in the property tests).
func BenchmarkEventBasedMillionEquivalence(b *testing.B) {
	tr, cal := bigBench(b)
	for i := 0; i < b.N; i++ {
		seq, err := perturb.AnalyzeEventBased(tr, cal)
		if err != nil {
			b.Fatal(err)
		}
		par, err := perturb.AnalyzeEventBasedParallel(tr, cal, 4)
		if err != nil {
			b.Fatal(err)
		}
		if seq.Duration != par.Duration {
			b.Fatalf("duration mismatch: %d vs %d", seq.Duration, par.Duration)
		}
		for j := range seq.Times {
			if seq.Times[j] != par.Times[j] {
				b.Fatalf("event %d mismatch", j)
			}
		}
	}
}
