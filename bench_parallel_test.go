package perturb_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"perturb"
	"perturb/internal/obs"
	"perturb/internal/testgen"
)

// Million-event benchmarks for the sharded event-based engine against the
// sequential worklist fixpoint.
//
// The workload is a backward-wave DOACROSS: iteration i runs on processor
// P-1-(i mod P), so the cross-iteration dependency chain snakes against
// the fixpoint's processor scan order. The sequential analysis then
// resolves only one iteration per full pass — its worst case, with
// O(iterations x processors) blocked re-checks — while the sharded engine
// performs exactly one wakeup per dependency edge and merges the finished
// per-processor runs instead of re-sorting the whole trace.

const (
	benchProcs = 8
	benchIters = 250_000 // ~1M events at 4 events per iteration
)

var (
	bigOnce  sync.Once
	bigTrace *perturb.Trace
	bigCal   perturb.Calibration
)

func bigBench(b *testing.B) (*perturb.Trace, perturb.Calibration) {
	b.Helper()
	return bigWorkload()
}

// bigWorkload builds (once) the million-event backward-wave trace shared
// by the engine benchmarks and the columnar codec's effectiveness tests.
func bigWorkload() (*perturb.Trace, perturb.Calibration) {
	bigOnce.Do(func() {
		bigTrace = testgen.BackwardWave(benchProcs, benchIters)
		if err := bigTrace.Validate(); err != nil {
			panic(err)
		}
		bigCal = perturb.Calibration{
			Overheads: perturb.UniformOverheads(2),
			SNoWait:   5,
			SWait:     8,
			AdvanceOp: 3,
			Barrier:   4,
		}
	})
	return bigTrace, bigCal
}

func BenchmarkEventBasedMillionSequential(b *testing.B) {
	tr, cal := bigBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())/1e6, "Mevents")
}

func BenchmarkEventBasedMillionParallel(b *testing.B) {
	tr, cal := bigBench(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Len())/1e6, "Mevents")
		})
	}
}

// BenchmarkObsOverhead times the sharded event-based analysis with the
// telemetry layer disabled and enabled: the on/off delta is the
// self-perturbation of our own instrumentation, which the obs design
// (gated flushes off the hot path) is required to keep under a few
// percent. Compare the two sub-benchmarks' ns/op.
func BenchmarkObsOverhead(b *testing.B) {
	tr, cal := bigBench(b)
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run("telemetry="+name, func(b *testing.B) {
			obs.SetEnabled(on)
			defer obs.SetEnabled(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Len())/1e6, "Mevents")
		})
	}
}

// BenchmarkEventBasedMillionEquivalence is a benchmark-shaped sanity
// check: the two engines agree on the million-event workload (cheap per
// iteration; the real verification lives in the property tests).
func BenchmarkEventBasedMillionEquivalence(b *testing.B) {
	tr, cal := bigBench(b)
	for i := 0; i < b.N; i++ {
		seq, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		par, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if seq.Duration != par.Duration {
			b.Fatalf("duration mismatch: %d vs %d", seq.Duration, par.Duration)
		}
		for j := range seq.Times {
			if seq.Times[j] != par.Times[j] {
				b.Fatalf("event %d mismatch", j)
			}
		}
	}
}

// BenchmarkStreamMillion compares whole-trace batch analysis against the
// streaming session on the million-event workload, both fed from the
// same encoded bytes — the numbers EXPERIMENTS.md's "Streaming
// incremental analysis" section quotes. The liveMB metric is the heap
// retained right before the final result is computed: batch holds the
// fully decoded trace (and retains the approximated one), while the
// low-memory stream holds only per-processor frontier state, so its
// footprint is independent of trace length.
func BenchmarkStreamMillion(b *testing.B) {
	tr, cal := bigBench(b)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	liveMB := func() float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc) / (1 << 20)
	}
	ctx := context.Background()

	b.Run("batch=decode+analyze", func(b *testing.B) {
		base := liveMB()
		var retained float64
		for i := 0; i < b.N; i++ {
			r, err := perturb.NewTraceReader(bytes.NewReader(enc))
			if err != nil {
				b.Fatal(err)
			}
			dec, err := perturb.ReadTrace(r)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				retained = liveMB() - base
			}
			if _, err := perturb.Analyze(dec, cal, perturb.AnalyzeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(retained, "liveMB")
	})
	b.Run("stream=lowmem", func(b *testing.B) {
		base := liveMB()
		var retained float64
		for i := 0; i < b.N; i++ {
			r, err := perturb.NewTraceReader(bytes.NewReader(enc))
			if err != nil {
				b.Fatal(err)
			}
			sa, err := perturb.NewStreamAnalyzer(cal, perturb.StreamOptions{
				Procs: r.Procs(), LowMemory: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := sa.FeedReader(ctx, r); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				retained = liveMB() - base
			}
			if _, err := sa.Close(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(retained, "liveMB")
	})
}
