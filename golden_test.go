package perturb_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"perturb"
)

// The golden conformance suite pins three things at once: the on-disk
// trace encodings (text and binary), their losslessness under conversion,
// and the event-based analysis output on three canonical synchronization
// shapes — a DOACROSS advance/await chain (the paper's Livermore loop 3
// pattern), lock-serialized critical sections, and a pure barrier phase.
// Regenerate the files after a deliberate format or analysis change with:
//
//	go test -run TestGolden -update .

var update = flag.Bool("update", false, "rewrite testdata/golden from the in-code definitions")

const goldenDir = "testdata/golden"

// goldenCal is the fixed calibration the golden analysis outputs assume.
func goldenCal() perturb.Calibration {
	return perturb.Calibration{
		Overheads: perturb.UniformOverheads(100),
		SNoWait:   50,
		SWait:     80,
		AdvanceOp: 30,
		Barrier:   40,
	}
}

// goldenTraces returns the canonical traces, defined in code so the
// files can always be regenerated from first principles.
func goldenTraces() map[string]*perturb.Trace {
	ev := func(t perturb.Time, p, s int, k perturb.Kind, i, v int) perturb.Event {
		return perturb.Event{Time: t, Proc: p, Stmt: s, Kind: k, Iter: i, Var: v}
	}

	// DOACROSS: two processors, interleaved iterations, iteration i
	// awaiting advance(i-1), fork fence at the top, barrier at the end.
	doacross := perturb.NewTrace(2)
	for _, e := range []perturb.Event{
		ev(0, 0, -1, perturb.KindLoopBegin, -1, -1),
		ev(200, 0, 1, perturb.KindCompute, 0, -1),
		ev(900, 1, 1, perturb.KindAwaitB, 0, 0),
		ev(1000, 0, 2, perturb.KindAdvance, 0, 0),
		ev(1100, 0, 1, perturb.KindAwaitB, 1, 0),
		ev(1600, 1, 1, perturb.KindAwaitE, 0, 0),
		ev(2100, 1, 2, perturb.KindCompute, 1, -1),
		ev(2700, 1, 3, perturb.KindAdvance, 1, 0),
		ev(2800, 0, 1, perturb.KindAwaitE, 1, 0),
		ev(3300, 0, 2, perturb.KindCompute, 2, -1),
		ev(3900, 0, 3, perturb.KindAdvance, 2, 0),
		ev(4000, 0, -2, perturb.KindBarrierArrive, 0, 0),
		ev(4100, 1, -2, perturb.KindBarrierArrive, 0, 0),
		ev(4200, 0, -3, perturb.KindBarrierRelease, 0, 0),
		ev(4250, 1, -3, perturb.KindBarrierRelease, 0, 0),
	} {
		doacross.Append(e)
	}

	// Locks: two processors contending for lock variable 7; the second
	// acquisition is serialized behind the first holder's release.
	locks := perturb.NewTrace(2)
	for _, e := range []perturb.Event{
		ev(0, 0, -1, perturb.KindLoopBegin, -1, -1),
		ev(100, 0, 1, perturb.KindCompute, 0, -1),
		ev(150, 1, 1, perturb.KindCompute, 1, -1),
		ev(300, 0, 2, perturb.KindLockReq, 0, 7),
		ev(320, 1, 2, perturb.KindLockReq, 1, 7),
		ev(400, 0, 2, perturb.KindLockAcq, 0, 7),
		ev(600, 0, 3, perturb.KindCompute, 0, -1),
		ev(800, 0, 4, perturb.KindLockRel, 0, 7),
		ev(1000, 1, 2, perturb.KindLockAcq, 1, 7),
		ev(1200, 1, 3, perturb.KindCompute, 1, -1),
		ev(1400, 1, 4, perturb.KindLockRel, 1, 7),
		ev(1500, 0, 5, perturb.KindCompute, 0, -1),
	} {
		locks.Append(e)
	}

	// Barrier: four processors with staggered arrivals; every release is
	// anchored at the latest arrival.
	barrier := perturb.NewTrace(4)
	for _, e := range []perturb.Event{
		ev(0, 0, -1, perturb.KindLoopBegin, -1, -1),
		ev(200, 0, 1, perturb.KindCompute, 0, -1),
		ev(300, 1, 1, perturb.KindCompute, 1, -1),
		ev(500, 2, 1, perturb.KindCompute, 2, -1),
		ev(900, 3, 1, perturb.KindCompute, 3, -1),
		ev(400, 0, -2, perturb.KindBarrierArrive, 0, 0),
		ev(500, 1, -2, perturb.KindBarrierArrive, 0, 0),
		ev(700, 2, -2, perturb.KindBarrierArrive, 0, 0),
		ev(1000, 3, -2, perturb.KindBarrierArrive, 0, 0),
		ev(1100, 0, -3, perturb.KindBarrierRelease, 0, 0),
		ev(1110, 1, -3, perturb.KindBarrierRelease, 0, 0),
		ev(1120, 2, -3, perturb.KindBarrierRelease, 0, 0),
		ev(1130, 3, -3, perturb.KindBarrierRelease, 0, 0),
		ev(1300, 0, 2, perturb.KindCompute, 0, -1),
	} {
		barrier.Append(e)
	}

	return map[string]*perturb.Trace{
		"doacross": doacross,
		"locks":    locks,
		"barrier":  barrier,
	}
}

// renderApprox renders an analysis result deterministically: a stats
// line followed by the approximated trace in the text codec.
func renderApprox(a *perturb.Approximation) []byte {
	var buf bytes.Buffer
	buf.WriteString("# duration=" + strconv.FormatInt(int64(a.Duration), 10) +
		" kept=" + strconv.Itoa(a.WaitsKept) +
		" removed=" + strconv.Itoa(a.WaitsRemoved) +
		" introduced=" + strconv.Itoa(a.WaitsIntroduced) + "\n")
	if err := a.Trace.WriteText(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func encodeText(t *testing.T, tr *perturb.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeBinary(t *testing.T, tr *perturb.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeColumnar(t *testing.T, tr *perturb.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteColumnar(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func goldenPath(name, ext string) string {
	return filepath.Join(goldenDir, name+ext)
}

func readGolden(t *testing.T, name, ext string) []byte {
	t.Helper()
	data, err := os.ReadFile(goldenPath(name, ext))
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	return data
}

// TestGoldenUpdate rewrites the golden files when -update is set.
func TestGoldenUpdate(t *testing.T) {
	if !*update {
		t.Skip("pass -update to regenerate golden files")
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cal := goldenCal()
	for name, tr := range goldenTraces() {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid golden trace: %v", name, err)
		}
		approx, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for ext, data := range map[string][]byte{
			".txt":        encodeText(t, tr),
			".bin":        encodeBinary(t, tr),
			".col":        encodeColumnar(t, tr),
			".approx.txt": renderApprox(approx),
		} {
			if err := os.WriteFile(goldenPath(name, ext), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGoldenEncodings pins all three codecs byte for byte and checks
// every pairwise conversion cycle is lossless.
func TestGoldenEncodings(t *testing.T) {
	for name, tr := range goldenTraces() {
		t.Run(name, func(t *testing.T) {
			wantText := readGolden(t, name, ".txt")
			wantBin := readGolden(t, name, ".bin")
			wantCol := readGolden(t, name, ".col")

			if got := encodeText(t, tr); !bytes.Equal(got, wantText) {
				t.Errorf("text encoding drifted from %s:\n%s\nwant:\n%s", goldenPath(name, ".txt"), got, wantText)
			}
			if got := encodeBinary(t, tr); !bytes.Equal(got, wantBin) {
				t.Errorf("binary encoding drifted from %s", goldenPath(name, ".bin"))
			}
			if got := encodeColumnar(t, tr); !bytes.Equal(got, wantCol) {
				t.Errorf("columnar encoding drifted from %s", goldenPath(name, ".col"))
			}

			fromText, err := perturb.ReadTraceText(bytes.NewReader(wantText))
			if err != nil {
				t.Fatal(err)
			}
			fromBin, err := perturb.ReadTraceBinary(bytes.NewReader(wantBin))
			if err != nil {
				t.Fatal(err)
			}
			fromCol, err := perturb.ReadTraceColumnar(bytes.NewReader(wantCol))
			if err != nil {
				t.Fatal(err)
			}
			assertSameTrace(t, "text vs binary decode", fromText, fromBin)
			assertSameTrace(t, "binary vs columnar decode", fromBin, fromCol)

			// Every pairwise conversion cycle, byte-lossless.
			if got := encodeText(t, fromBin); !bytes.Equal(got, wantText) {
				t.Error("text -> binary -> text round trip is not lossless")
			}
			if got := encodeBinary(t, fromText); !bytes.Equal(got, wantBin) {
				t.Error("binary -> text -> binary round trip is not lossless")
			}
			if got := encodeText(t, fromCol); !bytes.Equal(got, wantText) {
				t.Error("text -> columnar -> text round trip is not lossless")
			}
			if got := encodeColumnar(t, fromBin); !bytes.Equal(got, wantCol) {
				t.Error("columnar -> binary -> columnar round trip is not lossless")
			}
		})
	}
}

// TestGoldenAnalysis pins the event-based analysis output on each shape,
// for the sequential fixpoint and the sharded engine alike.
func TestGoldenAnalysis(t *testing.T) {
	cal := goldenCal()
	for name, tr := range goldenTraces() {
		t.Run(name, func(t *testing.T) {
			want := readGolden(t, name, ".approx.txt")

			seq, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := renderApprox(seq); !bytes.Equal(got, want) {
				t.Errorf("sequential analysis drifted from %s:\n%s\nwant:\n%s", goldenPath(name, ".approx.txt"), got, want)
			}

			for _, workers := range []int{1, 3} {
				par, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := renderApprox(par); !bytes.Equal(got, want) {
					t.Errorf("parallel analysis (workers=%d) drifted from %s", workers, goldenPath(name, ".approx.txt"))
				}
			}
		})
	}
}

func assertSameTrace(t *testing.T, label string, a, b *perturb.Trace) {
	t.Helper()
	if a.Procs != b.Procs || a.Len() != b.Len() {
		t.Fatalf("%s: shape mismatch", label)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("%s: event %d differs: %v vs %v", label, i, a.Events[i], b.Events[i])
		}
	}
}
