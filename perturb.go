// Package perturb recovers actual execution performance from perturbed
// performance measurements, implementing the event-based perturbation
// analysis of Malony, "Event-Based Performance Perturbation: A Case Study"
// (PPoPP 1991).
//
// # Overview
//
// Software trace instrumentation perturbs the program it measures: probes
// add execution time, and in dependent concurrent execution they also shift
// the relative timing of synchronization operations, hiding waiting that
// the uninstrumented program would exhibit or introducing waiting it would
// not. This package provides:
//
//   - a statement-level program model with sequential, vector, DOALL and
//     DOACROSS loops (NewLoop, LivermoreLoop);
//   - a deterministic simulator of an 8-processor shared-memory machine in
//     the style of the Alliant FX/80, with advance/await synchronization
//     (Simulate) — running without instrumentation yields the actual
//     execution, running with a Plan yields the measured one;
//   - a unified analysis entry point (Analyze) selecting between
//     time-based analysis (paper §3: per-event probe overhead removal),
//     event-based analysis (paper §4: synchronization modeling, sequential
//     or sharded-parallel execution), and the liberal reschedule-aware
//     variant — see AnalyzeOptions;
//   - a streaming session API (NewStreamAnalyzer) — the incremental form
//     of Analyze and the primary surface for live data: feed events as
//     they arrive, observe windowed intermediate results (waiting,
//     parallelism, per-processor timing over measured-time windows), and
//     close to obtain exactly the batch result. Batch Analyze and the
//     streaming session run the same engine; see StreamOptions;
//   - a trace sanitizer (ValidateTrace via Trace.Validate, RepairTrace,
//     AuditTrace) that classifies and repairs real-world trace defects —
//     dropped probes, unmatched synchronization, clock skew, truncated
//     processors — and a degraded analysis mode (AnalyzeOptions.Repair)
//     that tolerates repaired traces, reporting per-processor confidence;
//   - a deterministic fault injector (InjectFaults) reproducing those
//     defect classes at seeded rates, for robustness experiments;
//   - lock-based (semaphore-style) critical sections alongside
//     advance/await, in both the simulator and the analyses;
//   - multi-phase programs: sequences of loops with per-phase fork/join
//     fences (NewProgram, SimulateProgram);
//   - trace metrics: per-processor waiting, waiting timelines, parallelism
//     profiles, per-statement profiles, per-event accuracy, critical paths
//     (Waiting, Timeline, Parallelism, StatementProfile, CompareTiming,
//     AnalyzeCriticalPath);
//   - a goroutine runtime with advance/await synchronization for taking
//     real traces of real Go code (package internal/rt, re-exported via
//     the examples);
//   - the paper's full evaluation: Figure 1, Tables 1-3, Figures 4-5
//     (RunPaperExperiments).
//
// # Quickstart
//
//	loop := perturb.NewLoop("my doacross", perturb.DOACROSS, 512).
//		Compute("independent work", 4*perturb.Microsecond).
//		CriticalBegin(0).
//		Compute("shared update", perturb.Microsecond).
//		CriticalEnd(0).
//		Loop()
//	cfg := perturb.Alliant()
//	actual, _ := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
//	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
//	measured, _ := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
//	cal := perturb.ExactCalibration(ovh, cfg)
//	approx, _ := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
//	// approx.Duration ~ actual.Duration even though measured.Duration is
//	// several times larger.
//
// Traces that lost events in the field (dropped probes, truncated
// buffers) still analyze with repair enabled:
//
//	approx, _ := perturb.Analyze(damaged, cal, perturb.AnalyzeOptions{Repair: true})
//	// approx.Repair details what was fixed; approx.Confidence scores each
//	// processor's share of conservative placeholders.
//
// # Streaming
//
// Live traces analyze incrementally through a session (see StreamAnalyzer
// for details): feed events as they arrive, read windowed results while
// the run is still going, close for the final answer:
//
//	sa, _ := perturb.NewStreamAnalyzer(cal, perturb.StreamOptions{
//		Window: 100 * perturb.Microsecond,
//	})
//	for batch := range liveEvents {
//		_ = sa.Feed(ctx, batch)
//		for w := range sa.Results() {
//			fmt.Printf("t=[%d,%d) waiting=%d parallelism=%.2f\n",
//				w.Start, w.End, w.Waiting, w.AvgParallelism)
//		}
//	}
//	approx, _ := sa.Close(ctx) // identical to batch Analyze
package perturb

import (
	"context"
	"io"

	"perturb/internal/cache"
	"perturb/internal/cancel"
	"perturb/internal/core"
	"perturb/internal/experiments"
	"perturb/internal/faults"
	"perturb/internal/instr"
	"perturb/internal/loops"
	"perturb/internal/machine"
	"perturb/internal/metrics"
	"perturb/internal/obs"
	"perturb/internal/order"
	"perturb/internal/program"
	"perturb/internal/slice"
	"perturb/internal/trace"
)

// Core trace types.
type (
	// Time is a point in simulated or real time, in nanoseconds.
	Time = trace.Time
	// Event is a single trace entry.
	Event = trace.Event
	// Trace is an event sequence with a processor count.
	Trace = trace.Trace
	// Kind classifies trace events.
	Kind = trace.Kind
)

// Event kinds.
const (
	KindCompute        = trace.KindCompute
	KindLoopBegin      = trace.KindLoopBegin
	KindLoopEnd        = trace.KindLoopEnd
	KindAdvance        = trace.KindAdvance
	KindAwaitB         = trace.KindAwaitB
	KindAwaitE         = trace.KindAwaitE
	KindBarrierArrive  = trace.KindBarrierArrive
	KindBarrierRelease = trace.KindBarrierRelease
	KindLockReq        = trace.KindLockReq
	KindLockAcq        = trace.KindLockAcq
	KindLockRel        = trace.KindLockRel
)

// Microsecond is the convenience time unit of the cost models.
const Microsecond = trace.Microsecond

// NewTrace returns an empty trace for the given processor count.
func NewTrace(procs int) *Trace { return trace.New(procs) }

// ReadTraceText, ReadTraceBinary and ReadTraceColumnar parse traces
// written with Trace.WriteText / Trace.WriteBinary / Trace.WriteColumnar.
var (
	ReadTraceText     = trace.ReadText
	ReadTraceBinary   = trace.ReadBinary
	ReadTraceColumnar = trace.ReadColumnar
)

// Streaming trace I/O.
type (
	// TraceReader streams trace events in caller-sized batches with
	// buffer reuse; see NewTraceReader.
	TraceReader = trace.Reader
	// TraceWriter streams trace events into an encoded trace; call
	// Flush once after the last Write.
	TraceWriter = trace.Writer
)

// NewTraceReader auto-detects the codec (text, binary or columnar) and
// returns a streaming reader; use ReadTrace to drain it into a whole
// Trace.
func NewTraceReader(r io.Reader) (TraceReader, error) { return trace.NewReader(r) }

// NewTraceTextWriter and NewTraceBinaryWriter return streaming encoders.
// The binary stream uses an unknown-length header sentinel, so it can be
// produced without knowing the event count up front.
var (
	NewTraceTextWriter   = trace.NewTextWriter
	NewTraceBinaryWriter = trace.NewBinaryWriter
)

// Columnar trace format: block-compressed per-column streams with a
// min/max index per block over time, processor and event kind, so
// windowed readers skip blocks without decoding them. See the README's
// "Trace formats" section for how the three codecs compare.
type (
	// ColumnarOptions configures NewTraceColumnarWriterOpts (block size,
	// optional per-block DEFLATE).
	ColumnarOptions = trace.ColumnarOptions
	// TraceBlockFilter selects which columnar blocks a filtered reader
	// decodes; the zero value decodes everything.
	TraceBlockFilter = trace.BlockFilter
)

// NewTraceColumnarWriter returns a streaming encoder for the columnar
// block format with default options.
func NewTraceColumnarWriter(w io.Writer, procs int) (TraceWriter, error) {
	return trace.NewColumnarWriter(w, procs)
}

// NewTraceColumnarWriterOpts is NewTraceColumnarWriter with explicit
// block size and compression options.
func NewTraceColumnarWriterOpts(w io.Writer, procs int, opts ColumnarOptions) (TraceWriter, error) {
	return trace.NewColumnarWriterOpts(w, procs, opts)
}

// NewFilteredTraceReader is NewTraceReader with columnar scan pushdown:
// when the stream is columnar, blocks the filter rules out are skipped
// undecoded. The filter is block-granular — callers still row-filter the
// events they receive.
func NewFilteredTraceReader(r io.Reader, f TraceBlockFilter) (TraceReader, error) {
	return trace.NewFilteredReader(r, f)
}

// ReadTrace drains a streaming reader into a fully materialized trace.
func ReadTrace(r TraceReader) (*Trace, error) {
	defer obs.StartSpan("perturb.read_trace").End()
	return trace.ReadAll(r)
}

// ReadTraceContext is ReadTrace under a context: the drain polls ctx
// between decode batches and abandons the read with ErrCanceled or
// ErrDeadlineExceeded, so decoding an unbounded stream stops promptly
// when its request is canceled.
func ReadTraceContext(ctx context.Context, r TraceReader) (*Trace, error) {
	defer obs.StartSpan("perturb.read_trace").End()
	return trace.ReadAllContext(ctx, r)
}

// Program model types.
type (
	// Loop is a statement-level loop model.
	Loop = program.Loop
	// Stmt is one statement of a loop.
	Stmt = program.Stmt
	// Builder constructs loops fluently.
	Builder = program.Builder
	// Mode is the loop execution mode.
	Mode = program.Mode
	// Schedule is the iteration-to-processor discipline.
	Schedule = program.Schedule
)

// Loop modes and schedules.
const (
	Sequential = program.Sequential
	Vector     = program.Vector
	DOALL      = program.DOALL
	DOACROSS   = program.DOACROSS

	Interleaved = program.Interleaved
	Blocked     = program.Blocked
	Dynamic     = program.Dynamic
)

// NewLoop starts building a loop model. Livermore kernel models are
// available via LivermoreLoop.
func NewLoop(name string, mode Mode, iters int) *Builder {
	return program.NewBuilder(name, 0, mode, iters)
}

// Program is a sequence of loop phases executed back to back.
type Program = program.Program

// NewProgram assembles a multi-phase program; simulate it with
// SimulateProgram.
func NewProgram(name string, phases ...*Loop) *Program {
	return program.NewProgram(name, phases...)
}

// LivermoreLoop returns the model of Livermore kernel n (1..24). Loops 3,
// 4 and 17 are the DOACROSS kernels the paper studies.
func LivermoreLoop(n int) (*Loop, error) {
	d, err := loops.Get(n)
	if err != nil {
		return nil, err
	}
	return d.Loop, nil
}

// Machine simulation.
type (
	// MachineConfig describes the simulated multiprocessor.
	MachineConfig = machine.Config
	// RunResult is a simulated execution: trace plus ground truth.
	RunResult = machine.Result
)

// Alliant returns the FX/80-flavoured default machine configuration.
func Alliant() MachineConfig { return machine.Alliant() }

// Simulate executes the loop under the instrumentation plan.
func Simulate(l *Loop, p Plan, cfg MachineConfig) (*RunResult, error) {
	defer obs.StartSpan("perturb.simulate").End()
	return machine.Run(l, p, cfg)
}

// SimulateContext is Simulate under a context: the discrete-event loop
// polls ctx every few thousand steps and abandons the simulation with
// ErrCanceled or ErrDeadlineExceeded, returning no partial result.
func SimulateContext(ctx context.Context, l *Loop, p Plan, cfg MachineConfig) (*RunResult, error) {
	defer obs.StartSpan("perturb.simulate").End()
	return machine.RunContext(ctx, l, p, cfg)
}

// SimulateProgram executes a multi-phase program under the plan.
func SimulateProgram(prog *Program, p Plan, cfg MachineConfig) (*RunResult, error) {
	defer obs.StartSpan("perturb.simulate_program").End()
	return machine.RunProgram(prog, p, cfg)
}

// SimulateProgramContext is SimulateProgram under a context; each phase
// runs with SimulateContext's cooperative cancellation.
func SimulateProgramContext(ctx context.Context, prog *Program, p Plan, cfg MachineConfig) (*RunResult, error) {
	defer obs.StartSpan("perturb.simulate_program").End()
	return machine.RunProgramContext(ctx, prog, p, cfg)
}

// Instrumentation.
type (
	// Plan selects which events are probed and at what cost.
	Plan = instr.Plan
	// Overheads are per-event probe costs.
	Overheads = instr.Overheads
	// Calibration is the analyst's estimate of probe and
	// synchronization costs, the input to the analyses.
	Calibration = instr.Calibration
)

// UniformOverheads charges the same probe cost for every event kind.
func UniformOverheads(c Time) Overheads { return instr.Uniform(c) }

// PaperOverheads returns the probe costs of the paper-scale experiments.
func PaperOverheads() Overheads { return loops.PaperOverheads() }

// FullInstrumentation probes every statement; withSync adds advance/await
// probes (the paper's Table 1 vs Table 2 configurations).
func FullInstrumentation(o Overheads, withSync bool) Plan { return instr.FullPlan(o, withSync) }

// NoInstrumentation emits the actual (unperturbed) trace via a zero-cost
// omniscient observer.
func NoInstrumentation() Plan { return instr.NonePlan() }

// ExactCalibration returns the calibration that reports the machine's true
// costs; see PerturbedCalibration for modeling calibration error.
func ExactCalibration(o Overheads, cfg MachineConfig) Calibration {
	return instr.Exact(o, cfg.SNoWait, cfg.SWait, cfg.AdvanceOp, cfg.Barrier)
}

// PerturbedCalibration skews cal by a deterministic relative error (at most
// maxRelErrPerMille/1000 per constant), emulating real in-vitro overhead
// measurement noise.
func PerturbedCalibration(cal Calibration, seed uint64, maxRelErrPerMille int) Calibration {
	return instr.Perturbed(cal, seed, maxRelErrPerMille)
}

// Analyses.
type (
	// Approximation is a perturbation-analysis result: the measured
	// trace re-timed to approximate the actual execution.
	Approximation = core.Approximation
	// ProcConfidence is one processor's degraded-mode quality summary on
	// an Approximation (see AnalyzeOptions.Repair).
	ProcConfidence = core.ProcConfidence
	// AnalyzeOptions configures Analyze. The zero value runs the classic
	// sequential event-based analysis of a well-formed trace.
	AnalyzeOptions = core.Options
	// AnalyzeMode selects the analysis family in AnalyzeOptions.
	AnalyzeMode = core.Mode
	// LiberalOptions parameterizes the liberal analysis mode.
	LiberalOptions = core.LiberalOptions
)

// Analysis modes for AnalyzeOptions.Mode.
const (
	// EventBased (the default) models synchronization operations and
	// reconstructs waiting (paper §4).
	EventBased = core.ModeEventBased
	// TimeBased removes per-event probe overhead thread by thread,
	// without interpreting synchronization (paper §3).
	TimeBased = core.ModeTimeBased
	// Liberal re-derives DOACROSS dependencies from the loop's dependence
	// distance, predicting behaviour under other schedules (paper §4.2.3).
	Liberal = core.ModeLiberal
)

// Analyze recovers an approximation of the actual execution from the
// measured trace under the calibration, applying the analysis selected by
// opts (see AnalyzeOptions):
//
//   - opts.Mode picks the analysis family (EventBased, TimeBased,
//     Liberal);
//   - opts.Workers picks the event-based engine: 0 the sequential
//     fixpoint, n >= 1 the sharded concurrent engine with n workers
//     (byte-identical output), negative the sharded engine with
//     GOMAXPROCS workers;
//   - opts.Repair sanitizes defective traces first (see RepairTrace) and
//     tolerates the repairs, attaching the repair report and per-processor
//     confidence scores to the result.
func Analyze(m *Trace, cal Calibration, opts AnalyzeOptions) (*Approximation, error) {
	defer obs.StartSpan("perturb.analyze").End()
	return core.Analyze(m, cal, opts)
}

// AnalyzeContext is Analyze under a context: the analysis polls ctx
// cooperatively — between fixpoint passes, at scheduler park/wake
// transitions, and every few thousand events inside the hot resolution
// loops — and abandons the run with ErrCanceled or ErrDeadlineExceeded
// (matching context.Canceled / context.DeadlineExceeded too under
// errors.Is) without returning a partial Approximation. Both the
// sequential and the sharded-parallel engines cancel this way, with every
// scheduler goroutine joined before the error returns. A background
// context reproduces Analyze exactly.
func AnalyzeContext(ctx context.Context, m *Trace, cal Calibration, opts AnalyzeOptions) (*Approximation, error) {
	defer obs.StartSpan("perturb.analyze").End()
	return core.AnalyzeContext(ctx, m, cal, opts)
}

// CachedAnalyzer memoizes Analyze results in-process. The analysis is
// deterministic — the same trace, calibration and options always yield
// the same approximation — so results are stored content-addressed: the
// key hashes the decoded events (codec-invariant) plus every analysis
// input that changes the output. Repeated analyses of an unchanged input
// cost a hash and a map lookup; concurrent identical analyses coalesce
// onto a single computation. This is the same engine perturbd uses for
// its service-side result cache.
//
// A CachedAnalyzer is safe for concurrent use. Returned approximations
// are shared across callers and must be treated as read-only.
type CachedAnalyzer struct {
	c *Cache
}

// Cache is the in-process analysis-result cache backing a CachedAnalyzer;
// see NewCachedAnalyzer.
type Cache = cache.Cache

// CacheStats summarizes a CachedAnalyzer's effectiveness: hits, misses,
// coalesced waiters, evictions, and current residency.
type CacheStats = cache.Stats

// NewCachedAnalyzer returns an analyzer memoizing up to maxBytes of
// results (sizes estimated from the approximation's trace footprint),
// evicting least recently used results beyond that. maxBytes <= 0
// disables caching: every call analyzes, which keeps the zero budget
// safe to configure.
func NewCachedAnalyzer(maxBytes int64) *CachedAnalyzer {
	return &CachedAnalyzer{c: cache.New(maxBytes)}
}

// Analyze is AnalyzeContext through the cache: a resident result returns
// immediately with cached=true, a concurrent identical call coalesces
// (also cached=true), and otherwise the analysis runs and is stored. A
// caller whose ctx expires leaves with ErrCanceled/ErrDeadlineExceeded
// while the computation continues for any remaining waiters.
func (a *CachedAnalyzer) Analyze(ctx context.Context, m *Trace, cal Calibration, opts AnalyzeOptions) (approx *Approximation, cached bool, err error) {
	defer obs.StartSpan("perturb.analyze.cached").End()
	key, _, err := cache.Key(m, cal, opts)
	if err != nil {
		return nil, false, err
	}
	v, cached, err := a.c.Do(ctx, key, approxSize, func(fctx context.Context) (any, error) {
		return core.AnalyzeContext(fctx, m, cal, opts)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*Approximation), cached, nil
}

// Stats returns the cache's lifetime counters and current residency.
func (a *CachedAnalyzer) Stats() CacheStats { return a.c.Stats() }

// approxSize estimates an approximation's resident footprint for the
// byte budget: the dominating term is the approximated trace's event
// slice.
func approxSize(v any) int64 {
	const perEvent = 64 // fields of trace.Event plus slice overhead
	ap := v.(*Approximation)
	size := int64(1024)
	if ap.Trace != nil {
		size += int64(len(ap.Trace.Events)) * perEvent
	}
	size += int64(len(ap.Times)) * 8
	return size
}

// AnalyzeTimeBased applies time-based perturbation analysis (paper §3).
//
// Deprecated: use Analyze with AnalyzeOptions{Mode: TimeBased}.
func AnalyzeTimeBased(m *Trace, cal Calibration) (*Approximation, error) {
	return Analyze(m, cal, AnalyzeOptions{Mode: TimeBased})
}

// AnalyzeEventBased applies event-based perturbation analysis (paper §4).
//
// Deprecated: use Analyze with the zero AnalyzeOptions.
func AnalyzeEventBased(m *Trace, cal Calibration) (*Approximation, error) {
	return Analyze(m, cal, AnalyzeOptions{})
}

// AnalyzeEventBasedParallel is AnalyzeEventBased computed by the sharded
// concurrent engine; output is byte-identical. workers <= 0 uses
// GOMAXPROCS.
//
// Deprecated: use Analyze with AnalyzeOptions{Workers: workers}.
func AnalyzeEventBasedParallel(m *Trace, cal Calibration, workers int) (*Approximation, error) {
	if workers <= 0 {
		workers = -1 // Analyze maps negative Workers to GOMAXPROCS
	}
	return Analyze(m, cal, AnalyzeOptions{Workers: workers})
}

// AnalyzeTimeBasedTotal estimates only the total execution time with the
// crudest time-based model (per-processor overhead subtraction); a cheap
// baseline, not an approximated trace.
func AnalyzeTimeBasedTotal(m *Trace, cal Calibration) (Time, error) {
	return core.TimeBasedTotal(m, cal)
}

// AnalyzeLiberal applies the reschedule-aware liberal analysis (paper
// §4.2.3, work reassignment).
//
// Deprecated: use Analyze with AnalyzeOptions{Mode: Liberal, Liberal: opts}.
func AnalyzeLiberal(m *Trace, cal Calibration, opts LiberalOptions) (*Approximation, error) {
	return Analyze(m, cal, AnalyzeOptions{Mode: Liberal, Liberal: opts})
}

// Imperfect traces: validation, repair, and fault injection.
//
// Real tracers drop probes under buffer pressure, lose processor tails,
// duplicate flushes, and skew clocks. Trace.Validate classifies such
// defects (returning errors matching the Err* sentinels below);
// RepairTrace fixes what can be fixed and flags the rest; Analyze with
// AnalyzeOptions.Repair runs the whole pipeline and degrades gracefully.
type (
	// RepairReport itemizes the defects one repair pass found and what it
	// did about each.
	RepairReport = trace.RepairReport
	// TraceDefect is one classified defect within a RepairReport.
	TraceDefect = trace.Defect
	// DefectClass enumerates the defect taxonomy.
	DefectClass = trace.DefectClass
	// FaultSpec configures deterministic fault injection; see InjectFaults.
	FaultSpec = faults.Spec
	// FaultReport counts the faults one injection pass placed.
	FaultReport = faults.Report
)

// Sentinel errors. Analysis and codec errors wrap these; test with
// errors.Is.
var (
	// ErrMalformedTrace is the umbrella for structurally invalid traces:
	// non-monotonic per-processor times, invalid processor ids or event
	// kinds, undecodable input.
	ErrMalformedTrace = trace.ErrMalformedTrace
	// ErrUnmatchedSync marks synchronization constructs missing one side
	// (an await without its advance, a lock acquisition without release).
	ErrUnmatchedSync = trace.ErrUnmatchedSync
	// ErrTruncatedTrace marks processors whose event stream ends early
	// (missing barrier participation at the end of a phase).
	ErrTruncatedTrace = trace.ErrTruncatedTrace
	// ErrUnresolvable is returned by event-based analysis when
	// constructive resolution cannot complete (without Repair).
	ErrUnresolvable = core.ErrUnresolvable
	// ErrUnsupported is returned when a trace's shape is outside what the
	// requested analysis can model.
	ErrUnsupported = core.ErrUnsupported
	// ErrCanceled is returned by the *Context entry points
	// (AnalyzeContext, SimulateContext, ReadTraceContext, ...) when their
	// context was canceled before the work completed; it wraps the
	// underlying context error, so errors.Is matches both this sentinel
	// and context.Canceled.
	ErrCanceled = cancel.ErrCanceled
	// ErrDeadlineExceeded is the deadline counterpart of ErrCanceled,
	// matching context.DeadlineExceeded as well.
	ErrDeadlineExceeded = cancel.ErrDeadlineExceeded
)

// RepairTrace sanitizes a defective trace: exact duplicates are dropped,
// inverted and half-missing synchronization brackets are re-timed or
// completed with placeholder events (stmt = SynthStmt), estimated clock
// skew is removed, truncated processors get their missing barrier
// participation synthesized, and unrepairable defects are flagged. The
// input is never modified; the report's Clean reports whether the trace
// was defect-free.
func RepairTrace(t *Trace) (*Trace, *RepairReport) { return trace.Repair(t) }

// AuditTrace classifies a trace's defects without repairing anything: the
// defect list RepairTrace would report, with the input untouched.
func AuditTrace(t *Trace) []TraceDefect { return trace.Audit(t) }

// SynthStmt is the statement id of sanitizer-synthesized placeholder
// events; real statements never use it.
const SynthStmt = trace.SynthStmt

// InjectFaults returns a corrupted copy of the trace, deterministically
// seeded by the spec — dropped probes and sync sides, duplicates,
// reorderings, clock skew, truncated processor tails — plus a report of
// the faults placed. The input is never modified; the zero FaultSpec is
// the identity.
func InjectFaults(t *Trace, spec FaultSpec) (*Trace, *FaultReport) { return faults.Inject(t, spec) }

// UniformFaults returns a FaultSpec injecting every per-event fault class
// at the given rate; DropFaults injects only drop faults (the robustness
// experiment's failure mode).
func UniformFaults(rate float64, seed uint64) FaultSpec { return faults.Uniform(rate, seed) }

// DropFaults returns a FaultSpec injecting only probe and sync-side drops.
func DropFaults(rate float64, seed uint64) FaultSpec { return faults.DropsOnly(rate, seed) }

// Metrics.
type (
	// ProcWaiting is one processor's waiting summary.
	ProcWaiting = metrics.ProcWaiting
	// WaitInterval is a classified busy/waiting span.
	WaitInterval = metrics.Interval
	// ParallelismProfile is a busy-processor step function.
	ParallelismProfile = metrics.Profile
)

// Waiting computes per-processor waiting statistics (paper Table 3).
func Waiting(t *Trace, cal Calibration) ([]ProcWaiting, error) { return metrics.Waiting(t, cal) }

// WaitingPercent converts waiting summaries to percentages of total time.
func WaitingPercent(ws []ProcWaiting, total Time) []float64 {
	return metrics.WaitingPercent(ws, total)
}

// Timeline decomposes a trace into per-processor busy/waiting intervals
// (paper Figure 4).
func Timeline(t *Trace, cal Calibration) ([][]WaitInterval, error) {
	return metrics.Timeline(t, cal)
}

// Parallelism computes the busy-processor profile (paper Figure 5).
func Parallelism(t *Trace, cal Calibration) (*ParallelismProfile, error) {
	return metrics.Parallelism(t, cal)
}

// TimingError quantifies per-event approximation accuracy.
type TimingError = metrics.TimingError

// CompareTiming computes per-event timing errors of approx against actual,
// matching events by identity.
func CompareTiming(actual, approx *Trace) (*TimingError, error) {
	return metrics.CompareTiming(actual, approx)
}

// StmtProfile is one statement's execution-time profile entry.
type StmtProfile = metrics.StmtProfile

// StatementProfile aggregates per-statement costs over a trace, sorted by
// descending total time.
func StatementProfile(t *Trace) ([]StmtProfile, error) {
	return metrics.StatementProfile(t)
}

// CriticalPath extracts the chain of dependences that determined the
// execution's duration; see order.CriticalPath.
type CriticalPath = order.Path

// CriticalPathStep is one hop of a critical path.
type CriticalPathStep = order.PathStep

// AnalyzeCriticalPath computes a trace's critical path.
func AnalyzeCriticalPath(t *Trace) (*CriticalPath, error) {
	return order.CriticalPath(t)
}

// CheckFeasible verifies that candidate preserves the happened-before
// relation of base (the paper's conservative-approximation guarantee).
func CheckFeasible(base, candidate *Trace) error {
	rel, err := order.Build(base)
	if err != nil {
		return err
	}
	return rel.Check(candidate)
}

// Trace slicing (Smith & Korel): extracting the causally sufficient
// sub-trace for a query, so analysis of "processor 3's waits in phase 2"
// runs on the events that determine it instead of the whole trace.
type (
	// SliceQuery selects the events of interest (processor set, statement
	// set, kind set, time window); the zero value matches everything.
	SliceQuery = slice.Query
	// SliceReport summarizes a slicing pass: selection and closure sizes,
	// plus columnar block-skipping effectiveness for SliceTrace on
	// encoded input.
	SliceReport = slice.Report
)

// Slice extracts the causally sufficient sub-trace for the query: the
// selected events closed backwards over the dependency edges event-based
// analysis resolves over (program order, fork fences, advance/await
// pairs, lock serialization, barrier participation). Analyzing the slice
// yields the same approximated times for its events as analyzing t whole.
func Slice(t *Trace, q SliceQuery) (*Trace, *SliceReport, error) {
	defer obs.StartSpan("perturb.slice").End()
	return slice.Slice(t, q)
}

// SliceTrace decodes a trace from r (any codec, auto-detected) and slices
// it. Columnar input with a windowed query skips blocks past the window
// without decoding them; see package internal/slice for the exactness
// conditions.
func SliceTrace(r io.Reader, q SliceQuery) (*Trace, *SliceReport, error) {
	defer obs.StartSpan("perturb.slice").End()
	return slice.Read(r, q)
}

// ParseSliceQuery parses the CLI query syntax, e.g.
// "procs=1,3 kinds=awaitE window=1000:2500"; see SliceQuery.
func ParseSliceQuery(spec string) (SliceQuery, error) { return slice.ParseQuery(spec) }

// RunPaperExperiments regenerates the paper's complete evaluation (Figure
// 1, Tables 1-3, Figures 4-5) and renders it to w.
func RunPaperExperiments(w io.Writer) error {
	return experiments.RunAll(w, experiments.PaperEnv())
}

// Observability.
//
// The toolchain instruments itself with the same discipline the paper
// demands of program instrumentation: near-zero-cost probes, explicitly
// calibrated overhead (see the self-perturbation audit in EXPERIMENTS.md).
// Telemetry is off by default; when disabled every probe is a single
// atomic flag load.
type (
	// ObsStats is a telemetry snapshot: pipeline-phase span timings plus
	// scheduler, simulator and codec counters. It round-trips through
	// encoding/json and renders itself with WriteText.
	ObsStats = obs.Stats
	// ObsSpanStat is one phase's span summary within an ObsStats.
	ObsSpanStat = obs.SpanStat
	// DebugServer is a running expvar + pprof HTTP endpoint.
	DebugServer = obs.DebugServer
)

// EnableObservability turns the self-instrumentation layer on or off
// (default off). Accumulated metrics survive transitions; see
// ResetObservability.
func EnableObservability(on bool) { obs.SetEnabled(on) }

// ObservabilityEnabled reports whether the telemetry layer is recording.
func ObservabilityEnabled() bool { return obs.Enabled() }

// ObservabilitySnapshot returns the current telemetry snapshot.
func ObservabilitySnapshot() ObsStats { return obs.Snapshot() }

// ResetObservability zeroes all telemetry metrics.
func ResetObservability() { obs.Reset() }

// ServeDebug starts an HTTP server on addr exposing /debug/vars (expvar,
// including the "obs" telemetry snapshot) and /debug/pprof. The caller
// owns shutdown via the returned server's Close.
func ServeDebug(addr string) (*DebugServer, error) { return obs.ServeDebug(addr) }
