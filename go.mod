module perturb

go 1.23
