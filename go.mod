module perturb

go 1.22
