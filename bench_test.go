package perturb_test

import (
	"io"
	"testing"

	"perturb"
	"perturb/internal/experiments"
)

// Benchmarks regenerating the paper's evaluation. Each benchmark runs the
// complete pipeline behind one table or figure — simulate the actual run,
// simulate the instrumented run, apply the perturbation analysis, derive
// the statistic — and reports the headline reproduced value as a custom
// metric next to the timing.

// BenchmarkFigure1 regenerates Figure 1: sequential Livermore loops under
// full instrumentation, time-based model recovery. The reported metric is
// the mean absolute relative error of the model against actual time.
func BenchmarkFigure1(b *testing.B) {
	env := experiments.PaperEnv()
	var meanErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(env)
		if err != nil {
			b.Fatal(err)
		}
		var s float64
		for _, row := range res.Rows {
			e := row.Model - 1
			if e < 0 {
				e = -e
			}
			s += e
		}
		meanErr = s / float64(len(res.Rows))
	}
	b.ReportMetric(meanErr, "model-abs-err")
}

// BenchmarkTable1 regenerates Table 1: time-based analysis of loops 3, 4
// and 17. Reported metrics are the reproduced Approximated/Actual ratios.
func BenchmarkTable1(b *testing.B) { benchTable(b, experiments.Table1) }

// BenchmarkTable2 regenerates Table 2: event-based analysis of loops 3, 4
// and 17.
func BenchmarkTable2(b *testing.B) { benchTable(b, experiments.Table2) }

func benchTable(b *testing.B, f func(experiments.Env) (*experiments.TableResult, error)) {
	b.Helper()
	env := experiments.PaperEnv()
	var res *experiments.TableResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = f(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch row.Loop {
		case 3:
			b.ReportMetric(row.Approx, "LL3-approx-ratio")
		case 4:
			b.ReportMetric(row.Approx, "LL4-approx-ratio")
		case 17:
			b.ReportMetric(row.Approx, "LL17-approx-ratio")
		}
	}
}

// BenchmarkTable3 regenerates Table 3: per-processor waiting percentages
// in loop 17's approximated execution. The reported metric is the mean
// waiting percentage.
func BenchmarkTable3(b *testing.B) {
	env := experiments.PaperEnv()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(env)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Average
	}
	b.ReportMetric(avg, "mean-waiting-pct")
}

// BenchmarkFigure4 regenerates Figure 4: the waiting timeline of loop 17,
// including rendering. The reported metric is the total number of waiting
// spans across processors.
func BenchmarkFigure4(b *testing.B) {
	env := experiments.PaperEnv()
	var spans int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(env)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		spans = 0
		for _, n := range res.WaitSpans {
			spans += n
		}
	}
	b.ReportMetric(float64(spans), "wait-spans")
}

// BenchmarkFigure5 regenerates Figure 5: the parallelism profile of loop
// 17. The reported metric is the average parallelism over the concurrent
// portion (paper: 7.5).
func BenchmarkFigure5(b *testing.B) {
	env := experiments.PaperEnv()
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(env)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Average
	}
	b.ReportMetric(avg, "avg-parallelism")
}

// Component benchmarks: the simulator and the analyses in isolation, per
// Livermore DOACROSS kernel.

func benchLoopSetup(b *testing.B, n int) (*perturb.Loop, perturb.MachineConfig, perturb.Overheads, perturb.Calibration) {
	b.Helper()
	loop, err := perturb.LivermoreLoop(n)
	if err != nil {
		b.Fatal(err)
	}
	cfg := perturb.Alliant()
	ovh := perturb.PaperOverheads()
	return loop, cfg, ovh, perturb.ExactCalibration(ovh, cfg)
}

func benchSimulate(b *testing.B, n int) {
	loop, cfg, ovh, _ := benchLoopSetup(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("no events")
		}
	}
}

func BenchmarkSimulateLoop3(b *testing.B)  { benchSimulate(b, 3) }
func BenchmarkSimulateLoop4(b *testing.B)  { benchSimulate(b, 4) }
func BenchmarkSimulateLoop17(b *testing.B) { benchSimulate(b, 17) }

func benchAnalysis(b *testing.B, n int, opts perturb.AnalyzeOptions) {
	loop, cfg, ovh, cal := benchLoopSetup(b, n)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perturb.Analyze(measured.Trace, cal, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(measured.Events)/1000, "kevents")
}

func BenchmarkTimeBasedLoop3(b *testing.B) {
	benchAnalysis(b, 3, perturb.AnalyzeOptions{Mode: perturb.TimeBased})
}
func BenchmarkEventBasedLoop3(b *testing.B)  { benchAnalysis(b, 3, perturb.AnalyzeOptions{}) }
func BenchmarkEventBasedLoop17(b *testing.B) { benchAnalysis(b, 17, perturb.AnalyzeOptions{}) }

// Ablation benchmarks: the design-choice sweeps of DESIGN.md (probe cost,
// statement coverage, calibration error), each running its full sweep per
// iteration. The reported metric is the worst event-based error observed.

func benchAblation(b *testing.B, f func(experiments.Env, int) (*experiments.AblationResult, error)) {
	b.Helper()
	env := experiments.PaperEnv()
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := f(env, 17)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range res.Points {
			if p.EventBasedErr > worst {
				worst = p.EventBasedErr
			}
		}
	}
	b.ReportMetric(worst*100, "worst-eb-err-pct")
}

func BenchmarkAblationProbeCost(b *testing.B)   { benchAblation(b, experiments.AblationProbeCost) }
func BenchmarkAblationCoverage(b *testing.B)    { benchAblation(b, experiments.AblationCoverage) }
func BenchmarkAblationCalibration(b *testing.B) { benchAblation(b, experiments.AblationCalibration) }

// BenchmarkScaling runs the processor-scaling study for loop 17; the
// reported metric is the recovered speedup at 8 CEs.
func BenchmarkScaling(b *testing.B) {
	env := experiments.PaperEnv()
	var at8 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scaling(env, 17, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		at8 = res.Points[1].RecoveredSpeedup
	}
	b.ReportMetric(at8, "recovered-speedup-8ce")
}

// BenchmarkLocks runs the ordered-vs-unordered critical-section study; the
// reported metric is the lock flavour's recovery ratio.
func BenchmarkLocks(b *testing.B) {
	env := experiments.PaperEnv()
	var rec float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Locks(env)
		if err != nil {
			b.Fatal(err)
		}
		rec = res.Rows[1].Recovered
	}
	b.ReportMetric(rec, "lock-recovered-ratio")
}

// BenchmarkLiberalLoop17 measures the reschedule-aware liberal analysis.
func BenchmarkLiberalLoop17(b *testing.B) {
	loop, cfg, ovh, cal := benchLoopSetup(b, 17)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := perturb.AnalyzeOptions{
		Mode:    perturb.Liberal,
		Liberal: perturb.LiberalOptions{Procs: cfg.Procs, Distance: loop.Distance, Schedule: perturb.Interleaved},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perturb.Analyze(measured.Trace, cal, opts); err != nil {
			b.Fatal(err)
		}
	}
}
