package perturb_test

// This file deliberately exercises the deprecated Analyze* wrappers: they
// must keep returning exactly what the unified Analyze API returns for the
// equivalent options until they are removed.
//
//lint:file-ignore SA1019 compat coverage for the deprecated wrappers

import (
	"testing"

	"perturb"
)

// TestDeprecatedWrappers pins each pre-Analyze entry point against the
// unified API so existing callers can migrate at leisure.
func TestDeprecatedWrappers(t *testing.T) {
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := perturb.Alliant()
	ovh := perturb.PaperOverheads()
	cal := perturb.ExactCalibration(ovh, cfg)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := measured.Trace

	same := func(t *testing.T, name string, got, want *perturb.Approximation) {
		t.Helper()
		if got.Duration != want.Duration {
			t.Errorf("%s: duration %d, Analyze says %d", name, got.Duration, want.Duration)
		}
		if got.Trace.Len() != want.Trace.Len() {
			t.Errorf("%s: %d events, Analyze says %d", name, got.Trace.Len(), want.Trace.Len())
		}
	}

	want, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := perturb.AnalyzeEventBased(tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	same(t, "AnalyzeEventBased", got, want)

	got, err = perturb.AnalyzeEventBasedParallel(tr, cal, 2)
	if err != nil {
		t.Fatal(err)
	}
	same(t, "AnalyzeEventBasedParallel", got, want)

	want, err = perturb.Analyze(tr, cal, perturb.AnalyzeOptions{Mode: perturb.TimeBased})
	if err != nil {
		t.Fatal(err)
	}
	got, err = perturb.AnalyzeTimeBased(tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	same(t, "AnalyzeTimeBased", got, want)

	lopts := perturb.LiberalOptions{Procs: cfg.Procs, Distance: loop.Distance, Schedule: perturb.Interleaved}
	want, err = perturb.Analyze(tr, cal, perturb.AnalyzeOptions{Mode: perturb.Liberal, Liberal: lopts})
	if err != nil {
		t.Fatal(err)
	}
	got, err = perturb.AnalyzeLiberal(tr, cal, lopts)
	if err != nil {
		t.Fatal(err)
	}
	same(t, "AnalyzeLiberal", got, want)
}
