package perturb_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"perturb"
	"perturb/internal/server"
)

// The service golden pins the perturbd wire format: the exact JSON the
// daemon returns for the canonical DOACROSS trace under the golden
// calibration. CI's service-smoke job diffs a live daemon's response
// against the same file, so a drift here is a wire-format break, not a
// cosmetic change. Regenerate together with the other goldens:
//
//	go test -run TestGolden -update .

const serviceGoldenName = "service_analyze"

// serviceGoldenQuery carries goldenCal as /analyze query parameters; keep
// in sync with goldenCal and with the CI smoke job's curl.
const serviceGoldenQuery = "event=100&advance=100&awaitb=100&awaite=100&snowait=50&swait=80&advanceop=30&barrier=40"

// serviceGoldenResponse runs one in-process daemon request: the golden
// DOACROSS trace in the binary codec against the golden calibration.
func serviceGoldenResponse(t *testing.T) []byte {
	t.Helper()
	srv := httptest.NewServer(server.New(server.Config{}).Handler())
	defer srv.Close()

	body := encodeBinary(t, goldenTraces()["doacross"])
	resp, err := http.Post(srv.URL+"/analyze?"+serviceGoldenQuery,
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service returned %d: %s", resp.StatusCode, got)
	}
	return got
}

// TestGoldenServiceUpdate rewrites the service golden when -update is set.
func TestGoldenServiceUpdate(t *testing.T) {
	if !*update {
		t.Skip("pass -update to regenerate golden files")
	}
	if err := os.WriteFile(goldenPath(serviceGoldenName, ".json"), serviceGoldenResponse(t), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenService pins the service response byte for byte and checks it
// is coherent JSON whose numbers match the direct in-process analysis.
func TestGoldenService(t *testing.T) {
	want := readGolden(t, serviceGoldenName, ".json")
	got := serviceGoldenResponse(t)
	if !bytes.Equal(got, want) {
		t.Errorf("service response drifted from %s:\n%s\nwant:\n%s",
			goldenPath(serviceGoldenName, ".json"), got, want)
	}

	var decoded server.Response
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatalf("service golden is not valid JSON: %v", err)
	}
	approx, err := perturb.Analyze(goldenTraces()["doacross"], goldenCal(), perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Duration != approx.Duration ||
		decoded.WaitsKept != approx.WaitsKept ||
		decoded.WaitsRemoved != approx.WaitsRemoved ||
		decoded.WaitsIntroduced != approx.WaitsIntroduced {
		t.Errorf("service golden summary %+v disagrees with direct analysis (duration=%d kept=%d removed=%d introduced=%d)",
			decoded, approx.Duration, approx.WaitsKept, approx.WaitsRemoved, approx.WaitsIntroduced)
	}
}
