package perturb_test

// The dogfooding acceptance test: a chaos-soak style workload drives an
// in-process perturbd with the span recorder attached, the recorder's
// export round-trips through the columnar codec, and perturb.Analyze
// loads the service's own trace into a valid summary with the request
// phases present — the service is a subject program of its own analysis.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"perturb"
	"perturb/internal/obs"
	"perturb/internal/selftrace"
	"perturb/internal/server"
	"perturb/internal/testgen"
)

func TestSelfTraceAnalyzesOwnService(t *testing.T) {
	const (
		requests    = 24
		concurrency = 6
	)
	rec := obs.NewRecorder(0)
	srv := server.New(server.Config{
		MaxConcurrency: 3,
		QueueDepth:     requests,
		RequestTimeout: 30 * time.Second,
		Recorder:       rec,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &server.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}

	// A chaos-soak style mix: a few distinct traces plus duplicates, so
	// requests exercise fresh analyses, cache hits and coalesced flights.
	traces := []*perturb.Trace{
		testgen.BackwardWave(4, 120),
		testgen.BackwardWave(4, 121),
		testgen.BackwardWave(3, 150),
	}
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	next := make(chan int, requests)
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, err := client.Analyze(context.Background(), traces[i%len(traces)], server.Request{}); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("soak request failed: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The -selftrace file path: export, write columnar, load back through
	// the facade like any other trace.
	var file bytes.Buffer
	if err := selftrace.WriteTo(rec, &file); err != nil {
		t.Fatalf("writing self-trace: %v", err)
	}
	st, err := perturb.ReadTraceColumnar(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatalf("self-trace file unreadable: %v", err)
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("self-trace invalid: %v", err)
	}
	if defects := perturb.AuditTrace(st); len(defects) != 0 {
		t.Fatalf("self-trace audits dirty: %v", defects)
	}

	// The service's own trace carries no probe overhead; a zero
	// calibration analyzes the measured timeline as-is.
	cal := perturb.Calibration{Overheads: perturb.UniformOverheads(0)}
	approx, err := perturb.Analyze(st, cal, perturb.AnalyzeOptions{Mode: perturb.EventBased})
	if err != nil {
		t.Fatalf("perturb.Analyze on the self-trace: %v", err)
	}
	if approx.Duration <= 0 {
		t.Fatalf("approximated duration = %v", approx.Duration)
	}
	if approx.Trace.Len() != st.Len() {
		t.Fatalf("analysis dropped events: %d != %d", approx.Trace.Len(), st.Len())
	}

	// Per-phase spans are present: every request phase appears as compute
	// records under its manifest statement id.
	_, m := selftrace.Export(rec)
	for _, phase := range []string{"admission", "decode", "analyze", "encode"} {
		id, ok := m.StmtID(phase)
		if !ok {
			t.Errorf("phase %q missing from the manifest (stmts %v)", phase, m.Stmts)
			continue
		}
		n := 0
		for _, e := range approx.Trace.Events {
			if e.Kind == perturb.KindCompute && e.Stmt == id {
				n++
			}
		}
		if n == 0 {
			t.Errorf("phase %q has no compute records in the analyzed trace", phase)
		}
	}

	// The soak was concurrent, so the self-trace must show more than one
	// request processor.
	if m.RequestProcs < 2 {
		t.Errorf("RequestProcs = %d, want concurrent request slots", m.RequestProcs)
	}
}
