package perturb_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"perturb"
)

// TestFacadePipeline exercises the public API end to end: build a loop,
// simulate actual and measured runs, analyze, and derive metrics.
func TestFacadePipeline(t *testing.T) {
	loop := perturb.NewLoop("facade", perturb.DOACROSS, 128).
		Compute("work", 3*perturb.Microsecond).
		CriticalBegin(0).
		Compute("update", perturb.Microsecond).
		CriticalEnd(0).
		Loop()
	cfg := perturb.Alliant()

	actual, err := perturb.Simulate(loop, perturb.NoInstrumentation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if measured.Duration <= actual.Duration {
		t.Fatal("instrumentation should slow the run")
	}

	cal := perturb.ExactCalibration(ovh, cfg)
	approx, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Duration != actual.Duration {
		t.Errorf("event-based recovery %d != actual %d", approx.Duration, actual.Duration)
	}

	tb, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{Mode: perturb.TimeBased})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Duration == actual.Duration {
		t.Error("time-based analysis should not be exact on a DOACROSS loop")
	}

	lib, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{
		Mode: perturb.Liberal,
		Liberal: perturb.LiberalOptions{
			Procs: cfg.Procs, Distance: loop.Distance, Schedule: perturb.Interleaved,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := float64(lib.Duration) / float64(actual.Duration)
	if r < 0.95 || r > 1.05 {
		t.Errorf("liberal recovery ratio %.3f", r)
	}

	ws, err := perturb.Waiting(approx.Trace, cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != cfg.Procs {
		t.Errorf("waiting rows = %d, want %d", len(ws), cfg.Procs)
	}
	if _, err := perturb.Timeline(approx.Trace, cal); err != nil {
		t.Fatal(err)
	}
	prof, err := perturb.Parallelism(approx.Trace, cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Level) == 0 {
		t.Error("parallelism profile empty")
	}
}

func TestFacadeTraceCodecs(t *testing.T) {
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		t.Fatal(err)
	}
	if loop.Number != 3 {
		t.Errorf("LivermoreLoop(3).Number = %d", loop.Number)
	}
	if _, err := perturb.LivermoreLoop(99); err == nil {
		t.Error("unknown kernel should error")
	}

	res, err := perturb.Simulate(loop, perturb.NoInstrumentation(), perturb.Alliant())
	if err != nil {
		t.Fatal(err)
	}
	var text, bin bytes.Buffer
	if err := res.Trace.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromText, err := perturb.ReadTraceText(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := perturb.ReadTraceBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Len() != res.Trace.Len() || fromBin.Len() != res.Trace.Len() {
		t.Error("codec round trip lost events")
	}
}

func TestRunPaperExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := perturb.RunPaperExperiments(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Table 2", "Figure 5"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestPerturbedCalibrationFacade(t *testing.T) {
	cfg := perturb.Alliant()
	base := perturb.ExactCalibration(perturb.PaperOverheads(), cfg)
	p := perturb.PerturbedCalibration(base, 9, 50)
	if p == base {
		t.Error("perturbed calibration should differ from exact")
	}
}

// TestFacadeProgramAndTools covers the remaining facade surface: program
// composition, the aggregate time-based model, feasibility checking,
// critical paths and profiles.
func TestFacadeProgramAndTools(t *testing.T) {
	phase1 := perturb.NewLoop("p1", perturb.DOACROSS, 32).
		Compute("w", 2*perturb.Microsecond).
		CriticalBegin(0).
		Compute("c", perturb.Microsecond).
		CriticalEnd(0).
		Loop()
	phase2 := perturb.NewLoop("p2", perturb.DOALL, 32).
		Compute("v", perturb.Microsecond).
		Loop()
	prog := perturb.NewProgram("pipeline", phase1, phase2)
	cfg := perturb.Alliant()

	actual, err := perturb.SimulateProgram(prog, perturb.NoInstrumentation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ovh := perturb.UniformOverheads(4 * perturb.Microsecond)
	measured, err := perturb.SimulateProgram(prog, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal := perturb.ExactCalibration(ovh, cfg)
	approx, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Duration != actual.Duration {
		t.Errorf("program recovery %d != actual %d", approx.Duration, actual.Duration)
	}
	if err := perturb.CheckFeasible(measured.Trace, approx.Trace); err != nil {
		t.Errorf("approximation should be feasible: %v", err)
	}
	total, err := perturb.AnalyzeTimeBasedTotal(measured.Trace, cal)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || total > measured.Duration {
		t.Errorf("aggregate total %d outside (0, measured %d]", total, measured.Duration)
	}
	path, err := perturb.AnalyzeCriticalPath(approx.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Steps) == 0 || path.Total <= 0 {
		t.Errorf("critical path empty: %+v", path)
	}
	prof, err := perturb.StatementProfile(approx.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 {
		t.Error("profile empty")
	}
	te, err := perturb.CompareTiming(actual.Trace, approx.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if te.MaxAbs != 0 {
		t.Errorf("exact recovery should have zero per-event error, max %d", te.MaxAbs)
	}
}

// TestCachedAnalyzer: the in-process cached analyzer returns results
// byte-identical to direct Analyze, serves repeats from memory, and
// discriminates on every analysis input.
func TestCachedAnalyzer(t *testing.T) {
	loop, err := perturb.LivermoreLoop(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := perturb.Alliant()
	ovh := perturb.UniformOverheads(5 * perturb.Microsecond)
	measured, err := perturb.Simulate(loop, perturb.FullInstrumentation(ovh, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal := perturb.ExactCalibration(ovh, cfg)

	direct, err := perturb.Analyze(measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	a := perturb.NewCachedAnalyzer(64 << 20)
	ctx := context.Background()
	first, cached, err := a.Analyze(ctx, measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first analysis reported cached")
	}
	if !reflect.DeepEqual(first, direct) {
		t.Error("cached analyzer result differs from direct Analyze")
	}

	second, cached, err := a.Analyze(ctx, measured.Trace, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("repeat analysis missed the cache")
	}
	if second != first {
		t.Error("repeat analysis did not return the resident result")
	}

	// A different analysis of the same trace is a distinct key.
	_, cached, err = a.Analyze(ctx, measured.Trace, cal, perturb.AnalyzeOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("repair-enabled analysis reused the plain result")
	}

	st := a.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 2 entries", st)
	}

	// Workers selects an engine, not a result: any worker count is a hit.
	_, cached, err = a.Analyze(ctx, measured.Trace, cal, perturb.AnalyzeOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("workers variant missed; worker count must not split the key")
	}

	// maxBytes <= 0 disables caching but stays usable.
	off := perturb.NewCachedAnalyzer(0)
	for i := 0; i < 2; i++ {
		res, cached, err := off.Analyze(ctx, measured.Trace, cal, perturb.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Error("disabled analyzer reported a cache hit")
		}
		if !reflect.DeepEqual(res, direct) {
			t.Error("disabled analyzer result differs from direct Analyze")
		}
	}
	if st := off.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("disabled analyzer stats = %+v, want zeroes", st)
	}
}
