#!/bin/sh
# End-to-end smoke test for the resilience surface, run from the
# repository root (CI's chaos-smoke job and `make chaos-smoke`):
#
#   1. start the daemon with a memory budget smaller than the golden
#      trace and wait for /healthz,
#   2. /readyz must answer status "ready" with queue gauges,
#   3. an over-budget upload with a correct X-Perturb-Content-SHA256
#      must come back 200 with "degraded": true, no trace fingerprint,
#      and an X-Perturb-Body-SHA256 header that matches the body bytes,
#   4. the same upload under a wrong checksum must be rejected 400 with
#      the machine-readable code "checksum_mismatch",
#   5. an over-budget repair request must be refused 413 (repair needs
#      the whole trace in memory),
#   6. SIGTERM must still drain cleanly.
#
# The deterministic chaos suites proper (netchaos fault injection, the
# fleet survival soak, mid-upload disconnects) run under -race from the
# Makefile target before this script.
set -eu

BIN=${1:?usage: chaos_smoke.sh <perturbd binary>}
ADDR=127.0.0.1:7709
BASE=http://$ADDR
TRACE=testdata/golden/doacross.bin

# The golden trace is a few hundred bytes; a 128-byte budget forces the
# low-memory streaming path on every upload.
"$BIN" -addr "$ADDR" -drain-timeout 5s -memory-budget 128 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "perturbd never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

curl -fsS "$BASE/readyz" | jq -e '.status == "ready" and .queue_cap >= 1' >/dev/null

SHA=$(sha256sum "$TRACE" | cut -d' ' -f1)
curl -fsS -D /tmp/chaos_headers -H "X-Perturb-Content-SHA256: $SHA" \
  --data-binary "@$TRACE" "$BASE/v1/analyze" > /tmp/chaos_degraded.json
jq -e '.api_version == "v1" and .degraded == true and (.trace_sha256 // "") == ""' \
  /tmp/chaos_degraded.json >/dev/null

# Response integrity: the advertised body hash must match the bytes.
WANT=$(tr -d '\r' < /tmp/chaos_headers | awk 'tolower($1) == "x-perturb-body-sha256:" {print tolower($2)}')
GOT=$(sha256sum /tmp/chaos_degraded.json | cut -d' ' -f1)
if [ -z "$WANT" ] || [ "$WANT" != "$GOT" ]; then
  echo "response hash header $WANT does not match body hash $GOT" >&2
  exit 1
fi

# A damaged upload (checksum contradicts the bytes) is rejected with the
# retryable machine-readable code, not silently analyzed.
ZEROS=0000000000000000000000000000000000000000000000000000000000000000
CODE=$(curl -sS -o /tmp/chaos_mismatch.json -w '%{http_code}' \
  -H "X-Perturb-Content-SHA256: $ZEROS" \
  --data-binary "@$TRACE" "$BASE/v1/analyze")
if [ "$CODE" != "400" ]; then
  echo "damaged upload answered $CODE, want 400" >&2
  exit 1
fi
jq -e '.code == "checksum_mismatch"' /tmp/chaos_mismatch.json >/dev/null

# Repair cannot run degraded: over-budget repair is refused loudly.
CODE=$(curl -sS -o /dev/null -w '%{http_code}' \
  --data-binary "@$TRACE" "$BASE/v1/analyze?repair=1")
if [ "$CODE" != "413" ]; then
  echo "over-budget repair answered $CODE, want 413" >&2
  exit 1
fi

kill -TERM "$PID"
trap - EXIT
if ! wait "$PID"; then
  echo "perturbd exited non-zero after SIGTERM" >&2
  exit 1
fi
echo "chaos smoke: OK"
