#!/bin/sh
# Result-cache smoke test for the perturbd daemon, run from the repository
# root (CI's cache-smoke job and `make cache-smoke`):
#
#   1. start the daemon with the debug endpoint up,
#   2. storm it with 20 uploads of the same golden trace — the first
#      analyzes ("cached": false), every duplicate must be served from
#      memory ("cached": true) with a response otherwise byte-identical
#      to the first,
#   3. read the cache.* counters off /debug/vars and require a hit ratio
#      of at least 0.85.
set -eu

BIN=${1:?usage: cache_smoke.sh <perturbd binary>}
ADDR=127.0.0.1:7717
DEBUG=127.0.0.1:6717
BASE=http://$ADDR
TRACE=testdata/golden/doacross.bin
TOTAL=20

"$BIN" -addr "$ADDR" -debug-addr "$DEBUG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "perturbd never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# The first upload runs the analysis.
curl -fsS --data-binary "@$TRACE" "$BASE/analyze" > /tmp/cache_smoke_first.json
grep -q '"cached": false' /tmp/cache_smoke_first.json

# Every duplicate is a cache hit, byte-identical modulo the cached flag.
sed 's/"cached": false/"cached": true/' /tmp/cache_smoke_first.json > /tmp/cache_smoke_want.json
i=1
while [ "$i" -lt "$TOTAL" ]; do
  curl -fsS --data-binary "@$TRACE" "$BASE/analyze" > /tmp/cache_smoke_got.json
  diff -u /tmp/cache_smoke_want.json /tmp/cache_smoke_got.json
  i=$((i + 1))
done

# The cache counters are on the debug expvar; the storm above must land
# a hit ratio of at least 0.85 (19 hits / 20 lookups = 0.95).
curl -fsS "http://$DEBUG/debug/vars" > /tmp/cache_smoke_vars.json
jq -r '.obs.counters as $c
  | ([$c[] | select(.name == "cache.hits").value] | add // 0) as $hits
  | ([$c[] | select(.name == "cache.misses").value] | add // 0) as $misses
  | ([$c[] | select(.name == "cache.coalesced").value] | add // 0) as $coalesced
  | "cache smoke: hits=\($hits) misses=\($misses) coalesced=\($coalesced)"' \
  /tmp/cache_smoke_vars.json
jq -e '.obs.counters as $c
  | ([$c[] | select(.name == "cache.hits").value] | add // 0) as $hits
  | ([$c[] | select(.name == "cache.misses").value] | add // 0) as $misses
  | ([$c[] | select(.name == "cache.coalesced").value] | add // 0) as $coalesced
  | ($hits + $misses + $coalesced) as $total
  | $total > 0 and ($hits + $coalesced) / $total >= 0.85' \
  /tmp/cache_smoke_vars.json > /dev/null

kill -TERM "$PID"
trap - EXIT
wait "$PID" || true
echo "cache smoke: OK"
