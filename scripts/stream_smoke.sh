#!/bin/sh
# End-to-end smoke test for the streaming analysis endpoint, run from the
# repository root (CI's stream-smoke job and `make stream-smoke`):
#
#   1. start the daemon (cache off, so batch and stream bodies carry no
#      cache fields) and wait for /healthz,
#   2. batch-analyze the golden DOACROSS trace at /v1/analyze,
#   3. upload the same trace to /v1/analyze/stream in small chunks with
#      gaps — windows must stream back as NDJSON while the upload is in
#      flight, and the final record's cumulative result must match the
#      batch response exactly,
#   4. the deprecated /analyze alias must answer byte-identically to
#      /v1/analyze with a Deprecation header naming the successor.
set -eu

BIN=${1:?usage: stream_smoke.sh <perturbd binary>}
ADDR=127.0.0.1:7708
BASE=http://$ADDR
TRACE=testdata/golden/doacross.bin
# goldenCal as query parameters; keep in sync with golden_service_test.go.
QUERY='event=100&advance=100&awaitb=100&awaite=100&snowait=50&swait=80&advanceop=30&barrier=40'
# 1 us windows over the ~4.25 us golden trace: several window lines.
WINDOW=1000

"$BIN" -addr "$ADDR" -drain-timeout 5s -cache-bytes 0 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "perturbd never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

curl -fsS --data-binary "@$TRACE" "$BASE/v1/analyze?$QUERY" | jq -S . > /tmp/stream_batch.json
jq -e '.api_version == "v1"' /tmp/stream_batch.json >/dev/null

# Chunked upload: -T - streams stdin with chunked transfer-encoding, so
# the server reads the body while already writing window lines back.
rm -rf /tmp/stream_chunks
mkdir /tmp/stream_chunks
split -b 2048 "$TRACE" /tmp/stream_chunks/c
(for c in /tmp/stream_chunks/c*; do cat "$c"; sleep 0.05; done) |
  curl -fsS -N -X POST -T - "$BASE/v1/analyze/stream?$QUERY&window=$WINDOW" > /tmp/stream.ndjson

tail -n 1 /tmp/stream.ndjson | jq -e '.final == true' >/dev/null
WINDOWS=$(tail -n 1 /tmp/stream.ndjson | jq .windows)
WLINES=$(jq -s '[.[] | select(.window)] | length' /tmp/stream.ndjson)
if [ "$WINDOWS" -lt 2 ] || [ "$WLINES" -ne "$WINDOWS" ]; then
  echo "expected >= 2 window lines matching the final count, got $WLINES lines / $WINDOWS declared" >&2
  exit 1
fi
tail -n 1 /tmp/stream.ndjson | jq -S .result > /tmp/stream_final.json
diff -u /tmp/stream_batch.json /tmp/stream_final.json

# Deprecated alias: same bytes, plus the deprecation headers.
curl -fsS -D /tmp/stream_alias_headers --data-binary "@$TRACE" "$BASE/analyze?$QUERY" |
  jq -S . > /tmp/stream_alias.json
diff -u /tmp/stream_batch.json /tmp/stream_alias.json
grep -qi '^deprecation: true' /tmp/stream_alias_headers
grep -qi 'successor-version' /tmp/stream_alias_headers
grep -qi '/v1/analyze' /tmp/stream_alias_headers

kill -TERM "$PID"
trap - EXIT
if ! wait "$PID"; then
  echo "perturbd exited non-zero after SIGTERM" >&2
  exit 1
fi
echo "stream smoke: OK"
