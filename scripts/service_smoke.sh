#!/bin/sh
# End-to-end smoke test for the perturbd analysis daemon, run from the
# repository root (CI's service-smoke job and `make service-smoke`):
#
#   1. start the daemon and wait for /healthz,
#   2. POST the golden DOACROSS trace with the golden calibration and
#      diff the JSON byte-for-byte against the committed service golden,
#   3. SIGTERM the daemon with a request in flight and require a clean
#      drain: exit status 0.
set -eu

BIN=${1:?usage: service_smoke.sh <perturbd binary>}
ADDR=127.0.0.1:7707
BASE=http://$ADDR
GOLDEN=testdata/golden/service_analyze.json
TRACE=testdata/golden/doacross.bin
# goldenCal as query parameters; keep in sync with golden_service_test.go.
QUERY='event=100&advance=100&awaitb=100&awaite=100&snowait=50&swait=80&advanceop=30&barrier=40'

"$BIN" -addr "$ADDR" -drain-timeout 5s &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "perturbd never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/readyz" | grep -q ready

curl -fsS --data-binary "@$TRACE" "$BASE/analyze?$QUERY" > /tmp/service_analyze.json
diff -u "$GOLDEN" /tmp/service_analyze.json

# Drain: a SIGTERM racing an in-flight request must still exit cleanly.
curl -s --data-binary "@$TRACE" "$BASE/analyze" >/dev/null 2>&1 &
CURL=$!
kill -TERM "$PID"
trap - EXIT
if ! wait "$PID"; then
  echo "perturbd exited non-zero after SIGTERM" >&2
  exit 1
fi
wait "$CURL" 2>/dev/null || true
echo "service smoke: OK"
