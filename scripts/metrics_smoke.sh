#!/bin/sh
# Observability smoke test for the perturbd daemon, run from the
# repository root (CI's metrics-smoke job and `make metrics-smoke`):
#
#   1. start the daemon self-tracing (-selftrace) with a JSON request log,
#   2. drive a couple of analysis requests (a cache miss and a hit),
#   3. require /metrics to pass the Prometheus text exposition checker
#      (internal/tools/promcheck) and to carry the build_info metric,
#   4. require the live /debug/selftrace download to audit clean,
#   5. SIGTERM the daemon and require the shutdown-written self-trace
#      file to load and audit clean through `tracecat -audit`,
#   6. require the request log to hold one JSON line per request with
#      trace id, status and cache outcome.
set -eu

BIN=${1:?usage: metrics_smoke.sh <perturbd binary> <promcheck binary> <tracecat binary>}
PROMCHECK=${2:?usage: metrics_smoke.sh <perturbd binary> <promcheck binary> <tracecat binary>}
TRACECAT=${3:?usage: metrics_smoke.sh <perturbd binary> <promcheck binary> <tracecat binary>}
ADDR=127.0.0.1:7717
BASE=http://$ADDR
TRACE=testdata/golden/doacross.bin
SELFTRACE=/tmp/perturbd_selftrace.col
REQLOG=/tmp/perturbd_requests.jsonl

rm -f "$SELFTRACE" "$REQLOG"
"$BIN" -addr "$ADDR" -drain-timeout 5s -selftrace "$SELFTRACE" -request-log "$REQLOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "perturbd never became healthy on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '^ok version='

# One miss, one hit: the second upload of the same trace is served from
# the result cache, so the self-trace records both request shapes.
curl -fsS --data-binary "@$TRACE" "$BASE/analyze" > /dev/null
curl -fsS --data-binary "@$TRACE" "$BASE/analyze" > /dev/null

# The exposition must parse, respect histogram invariants, and name the
# build.
curl -fsS "$BASE/metrics" > /tmp/perturbd_metrics.txt
"$PROMCHECK" /tmp/perturbd_metrics.txt
grep -q '^perturb_build_info{' /tmp/perturbd_metrics.txt
grep -q '^perturb_server_requests_total ' /tmp/perturbd_metrics.txt

# The live self-trace download must be a loadable, audit-clean trace.
curl -fsS "$BASE/debug/selftrace" > /tmp/perturbd_live.col
"$TRACECAT" -audit /tmp/perturbd_live.col | grep -qx clean

kill -TERM "$PID"
trap - EXIT
if ! wait "$PID"; then
  echo "perturbd exited non-zero after SIGTERM" >&2
  exit 1
fi

# The shutdown-written file carries the drain barrier and audits clean.
test -s "$SELFTRACE"
"$TRACECAT" -audit "$SELFTRACE" | grep -qx clean
"$TRACECAT" -summary "$SELFTRACE" >/dev/null

# One JSON log line per request, each with the observability fields.
LINES=$(wc -l < "$REQLOG")
if [ "$LINES" -lt 2 ]; then
  echo "request log has $LINES lines, want >= 2" >&2
  exit 1
fi
grep -q '"trace_id":' "$REQLOG"
grep -q '"status":200' "$REQLOG"
grep -q '"cache":"miss"' "$REQLOG"
grep -q '"cache":"hit"' "$REQLOG"
grep -q '"latency_ns":' "$REQLOG"

echo "metrics smoke: OK"
