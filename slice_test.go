package perturb_test

import (
	"bytes"
	"math/rand"
	"testing"

	"perturb"
	"perturb/internal/testgen"
)

// Metamorphic suite for trace slicing (ISSUE 6): analyzing the causally
// sufficient slice must yield exactly the approximated times the
// full-trace analysis assigns to the same events. The comparison is
// byte-for-byte: the slice's approximated trace, rendered in the text
// codec, against the full approximation restricted to the slice's events.

// sliceQueries generates the query set for a trace: identity cases, each
// constraint dimension alone, combinations, and match-nothing.
func sliceQueries(tr *perturb.Trace) map[string]perturb.SliceQuery {
	start, end := tr.Start(), tr.End()
	mid := start + (end-start)/2
	qs := map[string]perturb.SliceQuery{
		"identity-empty":  {},
		"identity-window": {HasWindow: true, From: start, To: end},
		"window-early":    {HasWindow: true, From: start, To: mid},
		"window-mid":      {HasWindow: true, From: start + (end-start)/4, To: start + 3*(end-start)/4},
		"proc0":           {Procs: []int{0}},
		"proc-last":       {Procs: []int{tr.Procs - 1}},
		"kind-awaitE":     {Kinds: []perturb.Kind{perturb.KindAwaitE}},
		"kind-lockacq":    {Kinds: []perturb.Kind{perturb.KindLockAcq}},
		"kind-barrier":    {Kinds: []perturb.Kind{perturb.KindBarrierRelease}},
		"stmt1":           {Stmts: []int{1}},
		"stmt-pair":       {Stmts: []int{2, 3}},
		"proc-kind":       {Procs: []int{tr.Procs - 1}, Kinds: []perturb.Kind{perturb.KindAwaitE}},
		"window-proc":     {HasWindow: true, From: start, To: mid, Procs: []int{0}},
		"window-kind":     {HasWindow: true, From: mid, To: end, Kinds: []perturb.Kind{perturb.KindCompute}},
		"nothing":         {HasWindow: true, From: end + 1000, To: end + 2000},
	}
	return qs
}

// restrictApprox projects the full-trace approximation onto the slice's
// events (by input index) and renders it canonically.
func restrictApprox(tr *perturb.Trace, full *perturb.Approximation, indices []int) *perturb.Trace {
	out := perturb.NewTrace(tr.Procs)
	for _, idx := range indices {
		e := tr.Events[idx]
		e.Time = full.Times[idx]
		out.Append(e)
	}
	out.Sort()
	return out
}

// checkSliceAgainstFull asserts the metamorphic property for one trace
// and one query, byte-for-byte. The full analysis is computed once by the
// caller; a nil full means the full trace does not analyze (the trace is
// then skipped for non-identity queries).
func checkSliceAgainstFull(t *testing.T, tr *perturb.Trace, full *perturb.Approximation, cal perturb.Calibration, q perturb.SliceQuery) {
	t.Helper()
	sl, rep, err := perturb.Slice(tr, q)
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	if rep.Kept != sl.Len() || len(rep.Indices) != sl.Len() {
		t.Fatalf("report inconsistent: kept=%d indices=%d events=%d", rep.Kept, len(rep.Indices), sl.Len())
	}
	if rep.Selected > rep.Kept || rep.Kept > rep.Total {
		t.Fatalf("report inconsistent: selected=%d kept=%d total=%d", rep.Selected, rep.Kept, rep.Total)
	}

	// Identity case: a query matching every event must slice to the whole
	// trace, byte-for-byte.
	if rep.Selected == tr.Len() {
		if !bytes.Equal(encodeText(t, sl), encodeText(t, tr)) {
			t.Fatal("identity query did not reproduce the whole trace")
		}
	}
	// Match-nothing case: empty selection closes to the empty trace.
	if rep.Selected == 0 {
		if sl.Len() != 0 {
			t.Fatalf("empty selection kept %d events", sl.Len())
		}
		return
	}
	if full == nil {
		return
	}

	approxSlice, err := perturb.Analyze(sl, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatalf("analyzing slice: %v", err)
	}
	want := encodeText(t, restrictApprox(tr, full, rep.Indices))
	got := encodeText(t, approxSlice.Trace)
	if !bytes.Equal(got, want) {
		t.Errorf("slice analysis diverged from restricted full analysis\nslice (%d/%d events):\n%s\nwant:\n%s",
			sl.Len(), tr.Len(), got, want)
	}
}

func TestSliceGoldenMetamorphic(t *testing.T) {
	cal := goldenCal()
	for name, tr := range goldenTraces() {
		t.Run(name, func(t *testing.T) {
			full, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for qname, q := range sliceQueries(tr) {
				t.Run(qname, func(t *testing.T) {
					checkSliceAgainstFull(t, tr, full, cal, q)
				})
			}
		})
	}
}

// TestSliceGeneratedMetamorphic runs the same property over random
// well-formed traces and random queries. Traces the full analysis rejects
// (random synchronization can deadlock) are exercised for slicing
// robustness only.
func TestSliceGeneratedMetamorphic(t *testing.T) {
	cal := goldenCal()
	r := rand.New(rand.NewSource(42))
	analyzed := 0
	for i := 0; i < 40; i++ {
		tr := testgen.Trace(r)
		if tr.Len() == 0 {
			continue
		}
		var full *perturb.Approximation
		if a, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{}); err == nil {
			full = a
			analyzed++
		}
		for qname, q := range sliceQueries(tr) {
			checkSliceAgainstFull(t, tr, full, cal, q)
			_ = qname
		}
		// A few random queries per trace on top of the structured set.
		for j := 0; j < 3; j++ {
			var q perturb.SliceQuery
			if r.Intn(2) == 0 {
				q.Procs = []int{r.Intn(tr.Procs)}
			}
			if r.Intn(2) == 0 {
				q.Kinds = []perturb.Kind{perturb.Kind(r.Intn(8))}
			}
			if r.Intn(2) == 0 {
				d := tr.End() - tr.Start()
				from := tr.Start() + perturb.Time(r.Int63n(int64(d)+1))
				q.HasWindow = true
				q.From = from
				q.To = from + perturb.Time(r.Int63n(int64(d)+1))
			}
			checkSliceAgainstFull(t, tr, full, cal, q)
		}
	}
	if analyzed == 0 {
		t.Fatal("no generated trace analyzed cleanly; the metamorphic property was never exercised")
	}
}

// TestSliceBackwardWave pins the property on the deterministic DOACROSS
// workload the benchmarks use, including its closing barrier.
func TestSliceBackwardWave(t *testing.T) {
	cal := goldenCal()
	tr := testgen.BackwardWave(4, 200)
	full, err := perturb.Analyze(tr, cal, perturb.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qname, q := range sliceQueries(tr) {
		t.Run(qname, func(t *testing.T) {
			checkSliceAgainstFull(t, tr, full, cal, q)
		})
	}
}

// TestSliceTraceColumnarPushdown checks the file-level entry point: the
// slice computed from a columnar stream with block skipping is
// byte-identical to the slice of the fully decoded trace, and narrow
// windows actually skip blocks.
func TestSliceTraceColumnarPushdown(t *testing.T) {
	tr := testgen.BackwardWave(4, 2000) // ~8000 events, several blocks
	var buf bytes.Buffer
	w, err := perturb.NewTraceColumnarWriterOpts(&buf, tr.Procs, perturb.ColumnarOptions{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(tr.Events); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	dur := tr.End() - tr.Start()
	for name, q := range map[string]perturb.SliceQuery{
		"narrow-early": {HasWindow: true, From: tr.Start() + dur/20, To: tr.Start() + dur/10},
		"narrow-proc":  {HasWindow: true, From: tr.Start(), To: tr.Start() + dur/8, Procs: []int{2}},
		"no-window":    {Procs: []int{1}},
	} {
		t.Run(name, func(t *testing.T) {
			fromFile, frep, err := perturb.SliceTrace(bytes.NewReader(enc), q)
			if err != nil {
				t.Fatal(err)
			}
			inMem, _, err := perturb.Slice(tr, q)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeText(t, fromFile), encodeText(t, inMem)) {
				t.Error("file-level slice with block skipping differs from in-memory slice")
			}
			if q.HasWindow {
				if frep.BlocksSkipped == 0 {
					t.Errorf("narrow window skipped no blocks (read %d)", frep.BlocksRead)
				}
			}
		})
	}
}
