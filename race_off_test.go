//go:build !race

package perturb_test

// raceEnabled reports whether the race detector is compiled in; timing
// threshold tests skip themselves under -race, where instrumentation
// skews the two codecs by different factors.
const raceEnabled = false
