# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench vet fmt experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rt/

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate the paper's evaluation (plain text) and the Markdown report.
experiments:
	$(GO) run ./cmd/experiments
	$(GO) run ./cmd/experiments -markdown > /tmp/perturb-report.md && \
		echo "report: /tmp/perturb-report.md"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/livermore17
	$(GO) run ./examples/doacross
	$(GO) run ./examples/locks
	$(GO) run ./examples/goroutines

clean:
	$(GO) clean ./...
