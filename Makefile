# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-sim bench-obs bench-codec bench-cache codec-check workers-check stats-smoke service-smoke cache-smoke metrics-smoke stream-smoke chaos-smoke selfperturb selftrace api api-check vet fmt experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rt/ ./internal/experiments/ ./internal/machine/

bench:
	$(GO) test -bench=. -benchmem ./...

# Simulator-core benchmarks only (throughput, schedules, lock-heavy),
# with allocation counts — the numbers EXPERIMENTS.md quotes.
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulator' -benchmem ./internal/machine/

# The parallel sweep runner must not change a single output byte.
workers-check:
	$(GO) run ./cmd/experiments -exact -run all -workers 1 > /tmp/perturb-w1.txt
	$(GO) run ./cmd/experiments -exact -run all -workers 8 > /tmp/perturb-w8.txt
	diff /tmp/perturb-w1.txt /tmp/perturb-w8.txt && echo "workers-invariant: OK"

# Columnar codec benchmarks: encode, whole decode, streaming decode and
# index-skipping windowed decode on a million-event trace — the numbers
# EXPERIMENTS.md's "Columnar trace codec" section quotes.
bench-codec:
	$(GO) test -run '^$$' -bench 'Columnar|DecodeBinary' -benchmem ./internal/trace/

# The columnar acceptance floors (block-skip fraction, 10x compression,
# 2x full-decode and 4x windowed-query decode) plus the slicing
# metamorphic suite, in isolation.
codec-check:
	$(GO) test -run 'TestColumnar|TestSlice' -count=1 -v .

# Telemetry on/off cost of the million-event analysis (EXPERIMENTS.md,
# "Self-perturbation audit").
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObsOverhead' -benchtime 10x .

# -stats must emit a machine-readable JSON line after the human summary.
stats-smoke:
	$(GO) run ./cmd/perturb -load testdata/golden/doacross.txt -stats -quiet \
		2> /tmp/perturb-stats.txt > /dev/null
	grep -m1 '^{' /tmp/perturb-stats.txt > /dev/null && echo "stats JSON: OK"

# End-to-end daemon check: serve, analyze the golden trace and diff the
# JSON against the committed service golden, then drain cleanly on
# SIGTERM (scripts/service_smoke.sh, also CI's service-smoke job).
service-smoke:
	$(GO) build -o /tmp/perturbd ./cmd/perturbd
	sh scripts/service_smoke.sh /tmp/perturbd

# Result-cache check against a live daemon: a duplicate-heavy storm must
# serve every repeat from memory ("cached": true, byte-identical body)
# and land a hit ratio of at least 0.85 on the debug expvar
# (scripts/cache_smoke.sh, also CI's cache-smoke job).
cache-smoke:
	$(GO) build -o /tmp/perturbd ./cmd/perturbd
	sh scripts/cache_smoke.sh /tmp/perturbd

# Streaming endpoint check against a live daemon: a chunked upload to
# /v1/analyze/stream must yield NDJSON window lines plus a final record
# matching the batch /v1/analyze response exactly, and the deprecated
# /analyze alias must answer byte-identically with a Deprecation header
# (scripts/stream_smoke.sh, also CI's stream-smoke job).
stream-smoke:
	$(GO) build -o /tmp/perturbd ./cmd/perturbd
	sh scripts/stream_smoke.sh /tmp/perturbd

# Resilience check: the deterministic chaos suites under -race (seeded
# netchaos fault injection, the three-instance fleet survival soak,
# mid-upload disconnects, memory-budget degradation), then a live-daemon
# pass over the degraded/checksum/readyz surface
# (scripts/chaos_smoke.sh, also CI's chaos-smoke job).
chaos-smoke:
	$(GO) test -race -count=1 ./internal/netchaos/
	$(GO) test -race -count=1 \
		-run 'TestFleetSurvivalSoak|TestFleetHedgingUnderChaosLatency|TestStreamMidUploadDisconnect|TestMemoryBudget|TestClientBreaker' \
		./internal/server/
	$(GO) build -o /tmp/perturbd ./cmd/perturbd
	sh scripts/chaos_smoke.sh /tmp/perturbd

# Cache hit/miss cost over HTTP plus the hedged fleet round-trip — the
# numbers EXPERIMENTS.md's "Result cache" section quotes.
bench-cache:
	$(GO) test -run '^$$' -bench 'BenchmarkCacheHit|BenchmarkCacheMissAnalyze|BenchmarkClientHedged' -benchmem ./internal/server/

# Observability check against a live daemon: /metrics must pass the
# Prometheus exposition checker, the live and shutdown-written
# self-traces must audit clean, and the request log must be JSON lines
# (scripts/metrics_smoke.sh, also CI's metrics-smoke job).
metrics-smoke:
	$(GO) build -o /tmp/perturbd ./cmd/perturbd
	$(GO) build -o /tmp/promcheck ./internal/tools/promcheck
	$(GO) build -o /tmp/tracecat ./cmd/tracecat
	sh scripts/metrics_smoke.sh /tmp/perturbd /tmp/promcheck /tmp/tracecat

# Dogfooded audit: the obs layer's own perturbation of the analysis.
selfperturb:
	$(GO) run ./cmd/experiments -run selfperturb

# Dogfooded service study: soak an in-process perturbd with the span
# recorder attached, analyze its exported self-trace, and report the
# service's waiting/parallelism profile plus the recorder's overhead.
selftrace:
	$(GO) run ./cmd/experiments -run selftrace

# Regenerate the pinned facade API surface after a deliberate change.
api:
	$(GO) run ./internal/tools/apidump > api.txt

# CI gate: the exported API may only change together with api.txt.
api-check:
	$(GO) run ./internal/tools/apidump > /tmp/perturb-api.txt
	diff -u api.txt /tmp/perturb-api.txt && echo "api surface: OK"

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate the paper's evaluation (plain text) and the Markdown report.
experiments:
	$(GO) run ./cmd/experiments
	$(GO) run ./cmd/experiments -markdown > /tmp/perturb-report.md && \
		echo "report: /tmp/perturb-report.md"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/livermore17
	$(GO) run ./examples/doacross
	$(GO) run ./examples/locks
	$(GO) run ./examples/goroutines

clean:
	$(GO) clean ./...
